#include "core/snapshot.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "core/system_factory.hpp"
#include "support/differential.hpp"
#include "telemetry/json.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

using testsupport::CheckpointPlan;
using testsupport::RunArtifacts;
using testsupport::TempFile;

/// Baseline differential configuration: 4x4 chip under moderate load with
/// the power-aware scheduler (the headline setup, scaled down).
SystemConfig base_config(std::uint64_t seed = 42) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = seed;
    cfg.workload.graphs.min_tasks = 2;
    cfg.workload.graphs.max_tasks = 6;
    const double capacity = 16.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(0.5, cfg.workload.graphs, capacity);
    return cfg;
}

/// Feature-loaded configuration: fault injection, NoC testing, segmented
/// sessions, mixed QoS classes -- every optional subsystem with persisted
/// state is active.
SystemConfig featured_config() {
    SystemConfig cfg = base_config(99);
    cfg.enable_fault_injection = true;
    cfg.faults.base_rate_per_core_s = 2.0;
    cfg.enable_noc_testing = true;
    cfg.noc_test.fault_rate_per_link_s = 0.5;
    cfg.segmented_tests = true;
    cfg.scheduler = SchedulerKind::Periodic;
    cfg.periodic_test_period = 100 * kMillisecond;
    cfg.workload.hard_rt_weight = 0.2;
    cfg.workload.soft_rt_weight = 0.3;
    cfg.workload.best_effort_weight = 0.5;
    return cfg;
}

void expect_identical(const RunArtifacts& got, const RunArtifacts& want,
                      const std::string& label) {
    EXPECT_EQ(got.report, want.report) << label << ": run report drifted";
    EXPECT_EQ(got.trace, want.trace) << label << ": event trace drifted";
    EXPECT_EQ(got.registry, want.registry)
        << label << ": metrics registry drifted";
}

/// Runs the full differential: uninterrupted reference vs (a) the same run
/// interrupted by checkpoints and (b) a restored continuation from every
/// checkpoint. All artifacts must be byte-identical.
void run_differential(const SystemConfig& cfg, SimDuration horizon,
                     const std::vector<SimTime>& checkpoint_times,
                     const std::string& label) {
    const RunArtifacts fresh = testsupport::run_reference(cfg, horizon);

    std::vector<std::unique_ptr<TempFile>> files;
    std::vector<CheckpointPlan> plans;
    for (SimTime at : checkpoint_times) {
        files.push_back(std::make_unique<TempFile>("snapshot_" + label));
        plans.push_back({at, files.back()->path()});
    }
    const RunArtifacts interrupted =
        testsupport::run_reference(cfg, horizon, plans);
    expect_identical(interrupted, fresh, label + "/interrupted");

    for (std::size_t i = 0; i < plans.size(); ++i) {
        const RunArtifacts restored =
            testsupport::run_restored(cfg, plans[i].path);
        expect_identical(restored, fresh,
                         label + "/restored@" + std::to_string(i));
    }
}

TEST(Snapshot, DifferentialBaseline) {
    // Three checkpoint epochs spread across the run, all on power-epoch
    // boundaries (default epoch 100 us).
    run_differential(base_config(), kSecond,
                     {200 * kMillisecond, 400 * kMillisecond,
                      600 * kMillisecond},
                     "baseline");
}

TEST(Snapshot, DifferentialFeatured) {
    run_differential(featured_config(), kSecond,
                     {300 * kMillisecond, 500 * kMillisecond,
                      700 * kMillisecond},
                     "featured");
}

TEST(Snapshot, DifferentialAllSchedulers) {
    for (SchedulerKind kind :
         {SchedulerKind::PowerAware, SchedulerKind::Periodic,
          SchedulerKind::Greedy, SchedulerKind::None}) {
        SystemConfig cfg = base_config(7);
        cfg.scheduler = kind;
        cfg.periodic_test_period = 100 * kMillisecond;
        run_differential(cfg, 600 * kMillisecond, {300 * kMillisecond},
                         std::string("scheduler-") + to_string(kind));
    }
}

TEST(Snapshot, DifferentialAcrossSeeds) {
    for (std::uint64_t seed : {1ULL, 1234567ULL}) {
        run_differential(base_config(seed), 600 * kMillisecond,
                         {200 * kMillisecond},
                         "seed-" + std::to_string(seed));
    }
}

// ---------------------------------------------------------------- guards

/// Writes one snapshot of `cfg` at `at` (run to `horizon`) and returns its
/// bytes; `file` keeps the backing path alive for the caller.
std::string make_snapshot(const SystemConfig& cfg, SimDuration horizon,
                          SimTime at, TempFile& file) {
    testsupport::run_reference(cfg, horizon, {{at, file.path()}});
    return testsupport::read_file(file.path());
}

void replace_once(std::string& text, const std::string& from,
                  const std::string& to) {
    const std::size_t pos = text.find(from);
    ASSERT_NE(pos, std::string::npos) << "pattern not found: " << from;
    text.replace(pos, from.size(), to);
}

class SnapshotGuards : public ::testing::Test {
protected:
    void SetUp() override {
        cfg_ = base_config();
        snapshot_ = make_snapshot(cfg_, 300 * kMillisecond,
                                  100 * kMillisecond, file_);
    }

    /// Restores `text` as a snapshot into a fresh system built from `cfg`.
    static void restore_text(const SystemConfig& cfg, const std::string& text,
                             RestoreOptions opts = {}) {
        ManycoreSystem sys(cfg);
        sys.restore(telemetry::parse_json(text), opts);
    }

    SystemConfig cfg_;
    TempFile file_{"snapshot_guard"};
    std::string snapshot_;
};

TEST_F(SnapshotGuards, TruncatedSnapshotFailsCleanly) {
    for (std::size_t cut : {snapshot_.size() / 2, snapshot_.size() - 2,
                            std::size_t{1}}) {
        EXPECT_THROW(telemetry::parse_json(snapshot_.substr(0, cut)),
                     RequireError)
            << "cut at " << cut;
    }
}

TEST_F(SnapshotGuards, CorruptedJsonFailsCleanly) {
    std::string text = snapshot_;
    replace_once(text, "\"cores\":", "\"bores\":");
    EXPECT_THROW(restore_text(cfg_, text), RequireError);
}

TEST_F(SnapshotGuards, TamperedCoreStateFailsCleanly) {
    // The first value of the first core record is the state enum (0..4).
    std::string text = snapshot_;
    replace_once(text, "\"cores\":[[", "\"cores\":[[9");
    EXPECT_THROW(restore_text(cfg_, text), RequireError);
}

TEST_F(SnapshotGuards, SchemaVersionMismatchFailsCleanly) {
    std::string text = snapshot_;
    replace_once(text, "\"mcs.snapshot.v1\"", "\"mcs.snapshot.v2\"");
    EXPECT_THROW(restore_text(cfg_, text), RequireError);
}

TEST_F(SnapshotGuards, ConfigFingerprintGuardsRestore) {
    SystemConfig other = cfg_;
    other.power_aware.guard_band_fraction = 0.10;
    // Strict restore rejects any config change; relax_config forks the run
    // under the changed policy knob.
    EXPECT_THROW(restore_text(other, snapshot_), RequireError);
    EXPECT_NO_THROW(restore_text(other, snapshot_, {.relax_config = true}));
}

TEST_F(SnapshotGuards, StructuralMismatchFailsEvenRelaxed) {
    SystemConfig other = cfg_;
    other.width = 8;
    other.height = 8;
    EXPECT_THROW(restore_text(other, snapshot_, {.relax_config = true}),
                 RequireError);
    SystemConfig resized = cfg_;
    resized.segmented_tests = !resized.segmented_tests;
    EXPECT_THROW(restore_text(resized, snapshot_, {.relax_config = true}),
                 RequireError);
}

TEST_F(SnapshotGuards, SeedChangeIsAConfigMismatchOnly) {
    // A different seed is not structural: strict restore rejects it, a
    // relaxed fork accepts it (and regenerates the workload under the
    // *snapshot's* seed, so the captured arrival trace continues).
    SystemConfig other = cfg_;
    other.seed = cfg_.seed + 1;
    EXPECT_THROW(restore_text(other, snapshot_), RequireError);
    EXPECT_NO_THROW(restore_text(other, snapshot_, {.relax_config = true}));
}

TEST_F(SnapshotGuards, RestoreLifecycleGuards) {
    const telemetry::JsonValue doc = telemetry::parse_json(snapshot_);

    // Restoring twice is rejected.
    {
        ManycoreSystem sys(cfg_);
        sys.restore(doc);
        EXPECT_THROW(sys.restore(doc), RequireError);
    }
    // Restoring after run() is rejected.
    {
        ManycoreSystem sys(cfg_);
        sys.run(100 * kMillisecond);
        EXPECT_THROW(sys.restore(doc), RequireError);
    }
    // A restored run must finish the captured horizon, nothing else.
    {
        ManycoreSystem sys(cfg_);
        sys.restore(doc);
        EXPECT_EQ(sys.restored_horizon(), 300 * kMillisecond);
        EXPECT_THROW(sys.run(400 * kMillisecond), RequireError);
    }
}

TEST_F(SnapshotGuards, CheckpointRegistrationGuards) {
    ManycoreSystem sys(cfg_);
    EXPECT_THROW(sys.checkpoint_at(0, "x.json"), RequireError);
    // Not on a power-epoch boundary (default epoch is 100 us).
    EXPECT_THROW(sys.checkpoint_at(150 * kMicrosecond, "x.json"),
                 RequireError);
    EXPECT_THROW(sys.checkpoint_at(100 * kMillisecond, ""), RequireError);
    // At or past the horizon: rejected when the run starts.
    sys.checkpoint_at(300 * kMillisecond, file_.path());
    EXPECT_THROW(sys.run(300 * kMillisecond), RequireError);
}

TEST_F(SnapshotGuards, FingerprintsAreStableAndDiscriminating) {
    EXPECT_EQ(structural_fingerprint(cfg_), structural_fingerprint(cfg_));
    EXPECT_EQ(config_fingerprint(cfg_), config_fingerprint(cfg_));

    SystemConfig knob = cfg_;
    knob.power_aware.guard_band_fraction += 0.01;
    EXPECT_EQ(structural_fingerprint(knob), structural_fingerprint(cfg_));
    EXPECT_NE(config_fingerprint(knob), config_fingerprint(cfg_));

    SystemConfig shape = cfg_;
    shape.width = 8;
    EXPECT_NE(structural_fingerprint(shape), structural_fingerprint(cfg_));
    EXPECT_NE(config_fingerprint(shape), config_fingerprint(cfg_));
}

}  // namespace
}  // namespace mcs
