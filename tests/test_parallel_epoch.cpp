// Parallel in-run epoch execution: EpochExecutor semantics plus the
// byte-identity differential matrix over the epoch_workers axis. The
// contract under test (docs/parallelism.md): any worker count produces
// byte-identical run reports, event traces, and metrics registries,
// because workers only fill per-core scratch and the commit phase folds
// in fixed core order.

#include "util/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "support/differential.hpp"

namespace mcs {
namespace {

using testsupport::CheckpointPlan;
using testsupport::RunArtifacts;
using testsupport::TempFile;

// ----------------------------------------------------- executor semantics

TEST(EpochExecutor, SingleWorkerRunsInline) {
    EpochExecutor exec(1);
    EXPECT_EQ(exec.workers(), 1);
    EXPECT_FALSE(exec.parallel());
    // Inline mode must preserve the serial visitation order exactly.
    std::vector<std::size_t> order;
    exec.for_each(5, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(EpochExecutor, ZeroSelectsHardwareWorkers) {
    EpochExecutor exec(0);
    EXPECT_GE(exec.workers(), 1);
    EXPECT_EQ(exec.workers(), hardware_jobs());
}

TEST(EpochExecutor, CoversEveryIndexExactlyOnce) {
    for (int workers : {1, 2, 3, 8}) {
        for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{64}, std::size_t{1000}}) {
            EpochExecutor exec(workers);
            std::vector<std::atomic<int>> hits(n);
            exec.for_each(n, [&](std::size_t i) { ++hits[i]; });
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_EQ(hits[i].load(), 1)
                    << "workers=" << workers << " n=" << n << " i=" << i;
            }
        }
    }
}

TEST(EpochExecutor, SlabPartitionIsDeterministic) {
    // The slab layout must be a pure function of (n, workers): contiguous
    // ceil(n/slabs)-sized ranges, independent of timing or repetition.
    EpochExecutor exec(4);
    for (int round = 0; round < 3; ++round) {
        std::mutex mu;
        std::vector<std::pair<std::size_t, std::size_t>> slabs;
        exec.for_slabs(10, [&](std::size_t begin, std::size_t end) {
            std::lock_guard<std::mutex> lock(mu);
            slabs.emplace_back(begin, end);
        });
        std::sort(slabs.begin(), slabs.end());
        const std::vector<std::pair<std::size_t, std::size_t>> want{
            {0, 3}, {3, 6}, {6, 9}, {9, 10}};
        EXPECT_EQ(slabs, want) << "round " << round;
    }
}

TEST(EpochExecutor, DisjointWritesProduceSerialResult) {
    const std::size_t n = 4096;
    std::vector<double> serial(n), parallel(n);
    for (std::size_t i = 0; i < n; ++i) {
        serial[i] = static_cast<double>(i) * 1.5 + 1.0;
    }
    EpochExecutor exec(8);
    exec.for_slabs(n, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
            parallel[i] = static_cast<double>(i) * 1.5 + 1.0;
        }
    });
    EXPECT_EQ(parallel, serial);
}

TEST(EpochExecutor, ExceptionRethrownAfterBarrierTeamSurvives) {
    EpochExecutor exec(4);
    EXPECT_THROW(exec.for_each(100,
                               [&](std::size_t i) {
                                   if (i == 37) {
                                       throw std::runtime_error("slab boom");
                                   }
                               }),
                 std::runtime_error);
    // The worker team survives a throwing epoch and the error slots are
    // cleared: subsequent epochs work and do not re-throw stale errors.
    std::atomic<int> count{0};
    exec.for_each(100, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 100);
}

TEST(EpochExecutor, InlineExceptionPropagates) {
    EpochExecutor exec(1);
    EXPECT_THROW(
        exec.for_each(10,
                      [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("inline boom");
                      }),
        std::runtime_error);
}

// ----------------------------------------- byte-identity differential axis

SystemConfig base_config(std::uint64_t seed = 42) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = seed;
    cfg.workload.graphs.min_tasks = 2;
    cfg.workload.graphs.max_tasks = 6;
    const double capacity = 16.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(0.5, cfg.workload.graphs, capacity);
    return cfg;
}

SystemConfig featured_config() {
    SystemConfig cfg = base_config(99);
    cfg.enable_fault_injection = true;
    cfg.faults.base_rate_per_core_s = 2.0;
    cfg.enable_noc_testing = true;
    cfg.noc_test.fault_rate_per_link_s = 0.5;
    cfg.segmented_tests = true;
    cfg.scheduler = SchedulerKind::Periodic;
    cfg.periodic_test_period = 100 * kMillisecond;
    cfg.workload.hard_rt_weight = 0.2;
    cfg.workload.soft_rt_weight = 0.3;
    cfg.workload.best_effort_weight = 0.5;
    return cfg;
}

void expect_identical(const RunArtifacts& got, const RunArtifacts& want,
                      const std::string& label) {
    EXPECT_EQ(got.report, want.report) << label << ": run report drifted";
    EXPECT_EQ(got.trace, want.trace) << label << ": event trace drifted";
    EXPECT_EQ(got.registry, want.registry)
        << label << ": metrics registry drifted";
}

/// Runs `cfg` serially and at each parallel worker count; all artifacts
/// must match the serial run byte for byte.
void run_worker_differential(const SystemConfig& cfg, SimDuration horizon,
                             const std::string& label) {
    const RunArtifacts serial =
        testsupport::run_with_workers(cfg, horizon, 1);
    for (int workers : {2, 8}) {
        const RunArtifacts parallel =
            testsupport::run_with_workers(cfg, horizon, workers);
        expect_identical(parallel, serial,
                         label + "/workers=" + std::to_string(workers));
    }
}

TEST(ParallelDifferential, AllSchedulersBaseFamily) {
    for (SchedulerKind kind :
         {SchedulerKind::PowerAware, SchedulerKind::Periodic,
          SchedulerKind::Greedy, SchedulerKind::None}) {
        SystemConfig cfg = base_config(7);
        cfg.scheduler = kind;
        cfg.periodic_test_period = 100 * kMillisecond;
        run_worker_differential(
            cfg, 400 * kMillisecond,
            std::string("base/scheduler-") + to_string(kind));
    }
}

TEST(ParallelDifferential, AllSchedulersFeaturedFamily) {
    for (SchedulerKind kind :
         {SchedulerKind::PowerAware, SchedulerKind::Periodic,
          SchedulerKind::Greedy, SchedulerKind::None}) {
        SystemConfig cfg = featured_config();
        cfg.scheduler = kind;
        run_worker_differential(
            cfg, 400 * kMillisecond,
            std::string("featured/scheduler-") + to_string(kind));
    }
}

TEST(ParallelDifferential, AcrossSeeds) {
    for (std::uint64_t seed : {1ULL, 1234567ULL}) {
        run_worker_differential(base_config(seed), 400 * kMillisecond,
                                "seed-" + std::to_string(seed));
        SystemConfig featured = featured_config();
        featured.seed = seed;
        run_worker_differential(featured, 400 * kMillisecond,
                                "featured-seed-" + std::to_string(seed));
    }
}

TEST(ParallelDifferential, CheckpointMidParallelRun) {
    // Checkpoint taken DURING a parallel run, restored at a DIFFERENT
    // worker count, compared against the serial uninterrupted run: proves
    // scratch is barrier-quiescent at checkpoints and that epoch_workers
    // is excluded from the snapshot config fingerprints.
    const SystemConfig cfg = featured_config();
    const SimDuration horizon = 600 * kMillisecond;
    const RunArtifacts serial = testsupport::run_with_workers(cfg, horizon, 1);

    TempFile snap("parallel_mid_run");
    const RunArtifacts interrupted = testsupport::run_with_workers(
        cfg, horizon, 2, {{300 * kMillisecond, snap.path()}});
    expect_identical(interrupted, serial, "parallel/interrupted@w2");

    for (int workers : {1, 8}) {
        SystemConfig restore_cfg = cfg;
        restore_cfg.epoch_workers = workers;
        const RunArtifacts restored =
            testsupport::run_restored(restore_cfg, snap.path());
        expect_identical(restored, serial,
                         "parallel/restored@w" + std::to_string(workers));
    }
}

}  // namespace
}  // namespace mcs
