#include <clocale>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/metrics.hpp"
#include "telemetry/json.hpp"
#include "telemetry/metrics_registry.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/tracer.hpp"
#include "util/require.hpp"

namespace mcs::telemetry {
namespace {

std::string registry_json(const MetricsRegistry& r) {
    std::ostringstream out;
    JsonWriter w(out);
    r.write_json(w);
    return out.str();
}

std::string chrome_json(const Tracer& t) {
    std::ostringstream out;
    t.write_chrome_json(out);
    return out.str();
}

TEST(JsonNumber, RoundTripsExactly) {
    for (double v : {0.0, 1.0, -1.0, 0.1, 1.0 / 3.0, 1e-300, 1e300,
                     3.141592653589793, 0.503, 65.0 / 3.0}) {
        const std::string text = json_number(v);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
    }
    EXPECT_EQ(json_number(std::nan("")), "null");
    EXPECT_EQ(json_number(INFINITY), "null");
}

TEST(JsonNumber, IsLocaleIndependent) {
    // snprintf/strtod honour LC_NUMERIC; charconv must not.
    if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") == nullptr) {
        GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
    }
    const std::string text = json_number(0.5);
    const double parsed = parse_json("1.25e2").number;
    std::setlocale(LC_NUMERIC, "C");
    EXPECT_EQ(text, "0.5");
    EXPECT_DOUBLE_EQ(parsed, 125.0);
}

TEST(JsonParser, EnforcesNestingDepthLimit) {
    // A nesting bomb ("[[[[...") must be rejected with a clean error, not
    // a stack overflow -- parse_json now fronts network input (mcs_serve).
    JsonLimits limits;
    limits.max_depth = 8;
    std::string ok(8, '[');
    ok += std::string(8, ']');
    EXPECT_EQ(parse_json(ok, limits).array.size(), 1u);

    std::string bomb(9, '[');
    bomb += std::string(9, ']');
    try {
        parse_json(bomb, limits);
        FAIL() << "depth bomb was accepted";
    } catch (const RequireError& e) {
        EXPECT_NE(std::string(e.what()).find("nesting exceeds max depth"),
                  std::string::npos)
            << e.what();
    }

    // Objects count toward the same depth budget.
    EXPECT_THROW(parse_json(R"({"a":{"b":[[[[[[[0]]]]]]]}})", limits),
                 RequireError);

    // The default limit still admits realistically nested documents but
    // stops an unbounded bomb well before the stack does.
    EXPECT_NO_THROW(parse_json(R"({"a":[{"b":[{"c":[1]}]}]})"));
    std::string deep(10000, '[');
    EXPECT_THROW(parse_json(deep), RequireError);
}

TEST(JsonParser, EnforcesDocumentSizeLimit) {
    JsonLimits limits;
    limits.max_bytes = 16;
    EXPECT_NO_THROW(parse_json(R"({"a":1})", limits));
    try {
        parse_json(R"({"key":"0123456789"})", limits);
        FAIL() << "oversized document was accepted";
    } catch (const RequireError& e) {
        EXPECT_NE(std::string(e.what()).find("exceeds max size"),
                  std::string::npos)
            << e.what();
    }
    // 0 disables the bound.
    JsonLimits unlimited;
    unlimited.max_bytes = 0;
    EXPECT_NO_THROW(parse_json(R"({"key":"0123456789"})", unlimited));
}

TEST(JsonParser, MalformedInputYieldsCleanErrors) {
    for (const char* bad :
         {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "\"unterminated",
          "1e", "{\"a\":1,}", "[1]trailing", "{\"a\":1 \"b\":2}"}) {
        EXPECT_THROW(parse_json(bad), RequireError) << bad;
    }
}

TEST(JsonWriter, EscapesAndNests) {
    std::ostringstream out;
    JsonWriter w(out);
    w.begin_object();
    w.field("s", "a\"b\\c\n");
    w.key("arr");
    w.begin_array();
    w.value(std::int64_t{-3});
    w.value(true);
    w.null();
    w.end_array();
    w.end_object();
    EXPECT_EQ(out.str(), R"({"s":"a\"b\\c\n","arr":[-3,true,null]})");
    const JsonValue v = parse_json(out.str());
    EXPECT_EQ(v.at("s").string, "a\"b\\c\n");
    EXPECT_EQ(v.at("arr").array.size(), 3u);
}

TEST(MetricsRegistry, CreateOnFirstUseWithStableReferences) {
    MetricsRegistry r;
    Counter& c = r.counter("system.tests_completed");
    c.inc();
    Counter& again = r.counter("system.tests_completed");
    EXPECT_EQ(&c, &again);
    again.inc(4);
    EXPECT_EQ(c.value(), 5u);

    Gauge& g = r.gauge("system.peak_temp_c");
    g.set(71.5);
    g.add(0.5);
    EXPECT_DOUBLE_EQ(r.gauge("system.peak_temp_c").value(), 72.0);

    EXPECT_EQ(r.find_counter("system.tests_completed"), &c);
    EXPECT_EQ(r.find_counter("no.such.metric"), nullptr);
    EXPECT_EQ(r.size(), 2u);
}

TEST(MetricsRegistry, HistogramLayoutIsFixedAtFirstRegistration) {
    MetricsRegistry r;
    Histogram& h = r.histogram("system.app_latency_ms", 0.0, 100.0, 10);
    h.add(42.0);
    EXPECT_EQ(&r.histogram("system.app_latency_ms", 0.0, 100.0, 10), &h);
    EXPECT_THROW(r.histogram("system.app_latency_ms", 0.0, 50.0, 10),
                 RequireError);
}

TEST(MetricsRegistry, ExportIsSortedByName) {
    MetricsRegistry r;
    r.counter("zeta").inc();
    r.counter("alpha").inc(2);
    const std::string json = registry_json(r);
    EXPECT_LT(json.find("alpha"), json.find("zeta"));
    const JsonValue v = parse_json(json);
    EXPECT_DOUBLE_EQ(v.at("counters").at("alpha").number, 2.0);
}

TEST(MetricsRegistry, MergeIsAssociative) {
    auto fill = [](MetricsRegistry& r, std::uint64_t c, double g,
                   double sample) {
        r.counter("events").inc(c);
        r.gauge("energy_j").add(g);
        r.histogram("latency", 0.0, 10.0, 5).add(sample);
    };
    MetricsRegistry a, b, c;
    fill(a, 1, 0.5, 1.0);
    fill(b, 10, 1.25, 4.5);
    fill(c, 100, 2.0, 9.9);
    // Extra metric present only in one operand must survive the merge.
    b.counter("only_in_b").inc(7);

    MetricsRegistry left_first, right_first;
    fill(left_first, 1, 0.5, 1.0);   // == a
    fill(right_first, 10, 1.25, 4.5);  // == b
    right_first.counter("only_in_b").inc(7);
    left_first.merge(b);
    left_first.merge(c);
    right_first.merge(c);
    MetricsRegistry a2;
    fill(a2, 1, 0.5, 1.0);
    a2.merge(right_first);

    EXPECT_EQ(registry_json(left_first), registry_json(a2));
    EXPECT_EQ(left_first.counter("events").value(), 111u);
    EXPECT_EQ(left_first.counter("only_in_b").value(), 7u);
    EXPECT_DOUBLE_EQ(left_first.gauge("energy_j").value(), 3.75);
    EXPECT_EQ(left_first.histogram("latency", 0.0, 10.0, 5).total(), 3u);
}

TEST(Gauge, MergeFollowsDeclaredPolicy) {
    Gauge max_a(GaugeMerge::Max), max_b(GaugeMerge::Max);
    max_a.set(71.5);
    max_b.set(68.0);
    max_a.merge(max_b);
    EXPECT_DOUBLE_EQ(max_a.value(), 71.5);

    Gauge mean_a(GaugeMerge::Mean), mean_b(GaugeMerge::Mean);
    Gauge mean_c(GaugeMerge::Mean);
    mean_a.set(10.0);
    mean_b.set(20.0);
    mean_c.set(60.0);
    mean_b.merge(mean_c);  // mean(20, 60), weight 2
    mean_a.merge(mean_b);  // mean(10, 20, 60)
    EXPECT_DOUBLE_EQ(mean_a.value(), 30.0);

    Gauge min_a(GaugeMerge::Min), unset(GaugeMerge::Min);
    min_a.set(-3.0);
    min_a.merge(unset);  // a never-written gauge is the identity
    EXPECT_DOUBLE_EQ(min_a.value(), -3.0);
    unset.merge(min_a);
    EXPECT_DOUBLE_EQ(unset.value(), -3.0);

    Gauge sum(GaugeMerge::Sum);
    EXPECT_THROW(sum.merge(min_a), RequireError);
}

TEST(MetricsRegistry, GaugePolicyIsFixedAtFirstRegistration) {
    MetricsRegistry r;
    r.gauge("system.peak_temp_c", GaugeMerge::Max).set(70.0);
    EXPECT_THROW(r.gauge("system.peak_temp_c"), RequireError);  // Sum != Max

    // Replica aggregation: peaks max, per-run means average.
    MetricsRegistry other;
    other.gauge("system.peak_temp_c", GaugeMerge::Max).set(75.0);
    other.gauge("system.mean_power_w", GaugeMerge::Mean).set(40.0);
    r.gauge("system.mean_power_w", GaugeMerge::Mean).set(60.0);
    r.merge(other);
    EXPECT_DOUBLE_EQ(r.gauge("system.peak_temp_c", GaugeMerge::Max).value(),
                     75.0);
    EXPECT_DOUBLE_EQ(r.gauge("system.mean_power_w", GaugeMerge::Mean).value(),
                     50.0);
}

TEST(Tracer, RingBufferWrapsAndCountsDrops) {
    Tracer t(4);
    for (int i = 0; i < 10; ++i) {
        t.record(static_cast<SimTime>(i), TraceCategory::Sim,
                 TracePhase::Instant, "tick", 0, i);
    }
    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.dropped(), 6u);
    std::vector<std::int64_t> seen;
    t.for_each([&](const TraceEvent& e) { seen.push_back(e.a); });
    EXPECT_EQ(seen, (std::vector<std::int64_t>{6, 7, 8, 9}));
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, DisabledTracerRecordsNothing) {
    Tracer t(8);
    t.set_enabled(false);
    t.record(1, TraceCategory::Power, TracePhase::Instant, "cap_actuate");
    t.instant(TraceCategory::Power, "cap_actuate");
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(Tracer, ScopeEmitsBeginEndWithClock) {
    Tracer t(8);
    SimTime now = 100;
    t.set_clock([&now] { return now; });
    {
        TraceScope scope(t, TraceCategory::Session, "test_session", 3, 2);
        now = 250;
    }
    std::vector<TraceEvent> events;
    t.for_each([&](const TraceEvent& e) { events.push_back(e); });
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].phase, TracePhase::Begin);
    EXPECT_EQ(events[0].time, 100u);
    EXPECT_EQ(events[0].tid, 3u);
    EXPECT_EQ(events[0].a, 2);
    EXPECT_EQ(events[1].phase, TracePhase::End);
    EXPECT_EQ(events[1].time, 250u);
}

TEST(Tracer, ChromeJsonIsByteDeterministicAndParses) {
    auto feed = [](Tracer& t) {
        t.record(1'000, TraceCategory::Session, TracePhase::Begin,
                 "test_session", 5, 2);
        t.record(2'500, TraceCategory::Dvfs, TracePhase::Instant, "vf_change",
                 5, 3, 1);
        t.record(4'000, TraceCategory::Session, TracePhase::End,
                 "test_session", 5);
    };
    Tracer t1(16), t2(16);
    feed(t1);
    feed(t2);
    const std::string json = chrome_json(t1);
    EXPECT_EQ(json, chrome_json(t2));

    const JsonValue v = parse_json(json);
    const auto& events = v.at("traceEvents").array;
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].at("ph").string, "B");
    EXPECT_EQ(events[0].at("cat").string, "session");
    EXPECT_DOUBLE_EQ(events[0].at("ts").number, 1.0);  // ns -> us
    EXPECT_EQ(events[1].at("ph").string, "i");

    std::ostringstream jsonl;
    t1.write_jsonl(jsonl);
    std::istringstream lines(jsonl.str());
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        EXPECT_TRUE(parse_json(line).is_object()) << line;
        ++n;
    }
    EXPECT_EQ(n, 3u);
}

TEST(RunReport, RoundTripsThroughParserDeterministically) {
    RunMetrics m;
    m.sim_time = 2 * kSecond;
    m.tests_completed = 42;
    m.mean_power_w = 65.0 / 3.0;
    MetricsRegistry reg;
    reg.counter("system.tests_completed").inc(42);
    reg.gauge("system.mean_power_w").set(65.0 / 3.0);
    reg.histogram("system.app_latency_ms", 0.0, 500.0, 50).add(12.0);

    std::ostringstream out1, out2;
    write_run_report(m, &reg, out1);
    write_run_report(m, &reg, out2);
    EXPECT_EQ(out1.str(), out2.str());

    const JsonValue v = parse_json(out1.str());
    EXPECT_EQ(v.at("schema").string, "mcs.run_report.v1");
    EXPECT_DOUBLE_EQ(v.at("metrics").at("tests_completed").number, 42.0);
    EXPECT_DOUBLE_EQ(v.at("metrics").at("mean_power_w").number, 65.0 / 3.0);
    EXPECT_DOUBLE_EQ(
        v.at("registry").at("counters").at("system.tests_completed").number,
        42.0);
    // Reports must stay wall-clock-free to be byte-reproducible.
    EXPECT_FALSE(v.has("wall_s"));
}

}  // namespace
}  // namespace mcs::telemetry
