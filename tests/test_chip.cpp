#include "arch/chip.hpp"

#include <algorithm>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

TEST(Chip, DimensionsAndCount) {
    Chip chip(8, 6, TechNode::nm16);
    EXPECT_EQ(chip.width(), 8);
    EXPECT_EQ(chip.height(), 6);
    EXPECT_EQ(chip.core_count(), 48u);
    EXPECT_EQ(chip.vf_level_count(),
              static_cast<std::size_t>(chip.tech().vf_levels));
    EXPECT_EQ(chip.max_vf_level(), chip.tech().vf_levels - 1);
}

TEST(Chip, IdCoordinateRoundTrip) {
    Chip chip(5, 4, TechNode::nm22);
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 5; ++x) {
            const CoreId id = chip.id_of(x, y);
            EXPECT_EQ(chip.x_of(id), x);
            EXPECT_EQ(chip.y_of(id), y);
            EXPECT_EQ(chip.core(id).x(), x);
            EXPECT_EQ(chip.core(id).y(), y);
            EXPECT_EQ(chip.core_at(x, y).id(), id);
        }
    }
}

TEST(Chip, RowMajorIds) {
    Chip chip(4, 4, TechNode::nm16);
    EXPECT_EQ(chip.id_of(0, 0), 0u);
    EXPECT_EQ(chip.id_of(3, 0), 3u);
    EXPECT_EQ(chip.id_of(0, 1), 4u);
    EXPECT_EQ(chip.id_of(3, 3), 15u);
}

TEST(Chip, Distance) {
    Chip chip(8, 8, TechNode::nm16);
    EXPECT_EQ(chip.distance(chip.id_of(0, 0), chip.id_of(0, 0)), 0);
    EXPECT_EQ(chip.distance(chip.id_of(0, 0), chip.id_of(7, 7)), 14);
    EXPECT_EQ(chip.distance(chip.id_of(2, 3), chip.id_of(5, 1)), 5);
}

TEST(Chip, NeighborCounts) {
    Chip chip(4, 4, TechNode::nm16);
    EXPECT_EQ(chip.neighbors(chip.id_of(0, 0)).size(), 2u);  // corner
    EXPECT_EQ(chip.neighbors(chip.id_of(1, 0)).size(), 3u);  // edge
    EXPECT_EQ(chip.neighbors(chip.id_of(1, 1)).size(), 4u);  // middle
}

TEST(Chip, NeighborsAreAdjacent) {
    Chip chip(6, 5, TechNode::nm16);
    for (CoreId id = 0; id < chip.core_count(); ++id) {
        for (CoreId n : chip.neighbors(id)) {
            EXPECT_EQ(chip.distance(id, n), 1);
        }
    }
}

TEST(Chip, OutOfRangeAccessesThrow) {
    Chip chip(3, 3, TechNode::nm16);
    EXPECT_THROW(chip.core(9), RequireError);
    EXPECT_THROW(chip.id_of(3, 0), RequireError);
    EXPECT_THROW(chip.id_of(0, -1), RequireError);
    EXPECT_THROW(chip.neighbors(100), RequireError);
    EXPECT_THROW(chip.distance(0, 100), RequireError);
}

TEST(Chip, BadDimensionsThrow) {
    EXPECT_THROW(Chip(0, 4, TechNode::nm16), RequireError);
    EXPECT_THROW(Chip(4, -1, TechNode::nm16), RequireError);
}

TEST(Chip, TdpMatchesTechnology) {
    Chip chip(8, 8, TechNode::nm16);
    EXPECT_DOUBLE_EQ(chip.tdp_w(), chip.tech().chip_tdp_w(64));
    // Dark-silicon: TDP is well below all-cores-peak.
    EXPECT_LT(chip.tdp_w(), 64.0 * chip.tech().core_peak_power_w());
}

TEST(Chip, CheckpointAllAdvancesEveryCore) {
    Chip chip(2, 2, TechNode::nm16);
    chip.core(0).start_task(0);
    chip.checkpoint_all(kMillisecond);
    EXPECT_GT(chip.core(0).total_busy_cycles(), 0u);
    // Checkpointed cores reject earlier timestamps afterwards.
    EXPECT_THROW(chip.core(1).checkpoint(0), RequireError);
}

TEST(Chip, CoresShareVfTable) {
    Chip chip(2, 2, TechNode::nm45);
    for (const Core& c : chip.cores()) {
        EXPECT_EQ(c.vf_level_count(), chip.vf_level_count());
        EXPECT_DOUBLE_EQ(c.freq_hz(), chip.vf_table().back().freq_hz);
    }
}

}  // namespace
}  // namespace mcs
