#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "util/config.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace mcs {
namespace {

// ------------------------------------------------------------------ table

TEST(Table, RendersHeaderAndRows) {
    TablePrinter t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"bb", "22"});
    const std::string out = t.to_string();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    // Box drawing present.
    EXPECT_NE(out.find('+'), std::string::npos);
    EXPECT_NE(out.find('|'), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
    TablePrinter t({"c"});
    t.add_row({"wide-cell-content"});
    const std::string out = t.to_string();
    std::istringstream is(out);
    std::string line;
    std::getline(is, line);
    // Rule must span the widest cell plus padding.
    EXPECT_EQ(line.size(), std::string("wide-cell-content").size() + 4);
}

TEST(Table, RowWidthMismatchThrows) {
    TablePrinter t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), RequireError);
}

TEST(Table, EmptyHeaderThrows) {
    EXPECT_THROW(TablePrinter({}), RequireError);
}

TEST(Table, SeparatorAddsRule) {
    TablePrinter t({"x"});
    t.add_row({"1"});
    t.add_separator();
    t.add_row({"2"});
    const std::string out = t.to_string();
    // Rules: top, after header, separator, bottom = 4 lines starting with +
    int rules = 0;
    std::istringstream is(out);
    std::string line;
    while (std::getline(is, line)) {
        if (!line.empty() && line[0] == '+') {
            ++rules;
        }
    }
    EXPECT_EQ(rules, 4);
}

TEST(Fmt, Doubles) {
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(3.14159, 0), "3");
    EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(Fmt, Integers) {
    EXPECT_EQ(fmt(static_cast<std::int64_t>(-42)), "-42");
    EXPECT_EQ(fmt(static_cast<std::uint64_t>(42)), "42");
}

TEST(Fmt, Percent) {
    EXPECT_EQ(fmt_pct(0.0123, 2), "1.23%");
    EXPECT_EQ(fmt_pct(1.0, 0), "100%");
}

// -------------------------------------------------------------------- csv

TEST(Csv, EscapePassthrough) {
    EXPECT_EQ(csv_escape("plain"), "plain");
    EXPECT_EQ(csv_escape(""), "");
}

TEST(Csv, EscapeSpecials) {
    EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesFile) {
    const std::string path = ::testing::TempDir() + "/mcs_csv_test.csv";
    {
        CsvWriter w(path, {"t", "v"});
        w.write_row({std::vector<std::string>{"0", "1.5"}});
        w.write_row(std::vector<double>{1.0, 2.5});
        EXPECT_EQ(w.rows_written(), 2u);
    }
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "t,v");
    std::getline(in, line);
    EXPECT_EQ(line, "0,1.5");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2.5");
    std::remove(path.c_str());
}

TEST(Csv, RowWidthMismatchThrows) {
    const std::string path = ::testing::TempDir() + "/mcs_csv_test2.csv";
    CsvWriter w(path, {"a", "b"});
    EXPECT_THROW(w.write_row({std::vector<std::string>{"1"}}), RequireError);
    std::remove(path.c_str());
}

TEST(Csv, BadPathThrows) {
    EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv", {"a"}),
                 RequireError);
}

// ----------------------------------------------------------------- config

TEST(Config, ParsesKeyValueArgs) {
    const char* argv[] = {"cores=64", "rate=1.5", "name=test", "flagless"};
    const Config c = Config::from_args(argv);
    EXPECT_EQ(c.get_int("cores", 0), 64);
    EXPECT_DOUBLE_EQ(c.get_double("rate", 0.0), 1.5);
    EXPECT_EQ(c.get_string("name", ""), "test");
    EXPECT_FALSE(c.has("flagless"));
}

TEST(Config, FallbacksWhenMissing) {
    const Config c;
    EXPECT_EQ(c.get_int("x", 7), 7);
    EXPECT_DOUBLE_EQ(c.get_double("x", 2.5), 2.5);
    EXPECT_EQ(c.get_string("x", "d"), "d");
    EXPECT_TRUE(c.get_bool("x", true));
}

TEST(Config, BoolParsing) {
    Config c;
    c.set("a", "true");
    c.set("b", "0");
    c.set("cc", "ON");
    c.set("d", "No");
    EXPECT_TRUE(c.get_bool("a", false));
    EXPECT_FALSE(c.get_bool("b", true));
    EXPECT_TRUE(c.get_bool("cc", false));
    EXPECT_FALSE(c.get_bool("d", true));
}

TEST(Config, MalformedValuesThrow) {
    Config c;
    c.set("n", "12x");
    c.set("f", "1.5.2");
    c.set("b", "maybe");
    EXPECT_THROW(c.get_int("n", 0), RequireError);
    EXPECT_THROW(c.get_double("f", 0.0), RequireError);
    EXPECT_THROW(c.get_bool("b", false), RequireError);
}

TEST(Config, LaterSetOverrides) {
    Config c;
    c.set("k", "1");
    c.set("k", "2");
    EXPECT_EQ(c.get_int("k", 0), 2);
}

}  // namespace
}  // namespace mcs
