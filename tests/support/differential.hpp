#pragma once

// Differential harness for the snapshot subsystem: runs a configuration
// uninterrupted and interrupted-then-restored, capturing the three
// byte-level artifacts the snapshot contract promises to preserve exactly
// (run-report JSON, chrome-trace JSON, metrics-registry state). Tests
// compare the artifact strings with EXPECT_EQ -- any drift is a contract
// violation, not a tolerance question.

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "core/system_factory.hpp"
#include "telemetry/json.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/tracer.hpp"
#include "util/require.hpp"

namespace mcs::testsupport {

/// Shared ring capacity: the restored tracer must match the captured one.
inline constexpr std::size_t kTraceCapacity = 1 << 15;

struct RunArtifacts {
    RunMetrics metrics;
    std::string report;    ///< run-report JSON (metrics + registry)
    std::string trace;     ///< chrome-trace JSON of the event ring
    std::string registry;  ///< metrics-registry save_state bytes
};

/// Unique throwaway path under the system temp directory (ctest runs test
/// processes concurrently; the pid + counter keep paths collision-free).
inline std::string unique_temp_path(const std::string& stem) {
    static std::atomic<unsigned> counter{0};
    return (std::filesystem::temp_directory_path() /
            (stem + "." + std::to_string(::getpid()) + "." +
             std::to_string(counter.fetch_add(1)) + ".json"))
        .string();
}

/// Deletes the file on scope exit.
class TempFile {
public:
    explicit TempFile(std::string stem) : path_(unique_temp_path(stem)) {}
    ~TempFile() { std::remove(path_.c_str()); }
    TempFile(const TempFile&) = delete;
    TempFile& operator=(const TempFile&) = delete;
    const std::string& path() const noexcept { return path_; }

private:
    std::string path_;
};

inline std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    MCS_REQUIRE(in.is_open(), "cannot open file: " + path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

inline void write_file(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::binary);
    MCS_REQUIRE(out.is_open(), "cannot open file for writing: " + path);
    out << text;
    MCS_REQUIRE(out.good(), "write failed: " + path);
}

/// Finishes `sys` (which already has `tracer` attached) and captures the
/// three artifacts.
inline RunArtifacts capture(ManycoreSystem& sys, telemetry::Tracer& tracer,
                            SimDuration horizon) {
    RunArtifacts art;
    art.metrics = sys.run(horizon);
    {
        std::ostringstream os;
        telemetry::write_run_report(art.metrics, &sys.registry(), os);
        art.report = os.str();
    }
    {
        std::ostringstream os;
        tracer.write_chrome_json(os);
        art.trace = os.str();
    }
    {
        std::ostringstream os;
        telemetry::JsonWriter w(os);
        sys.registry().save_state(w);
        art.registry = os.str();
    }
    return art;
}

struct CheckpointPlan {
    SimTime at = 0;
    std::string path;
};

/// One full run, optionally writing checkpoints en route. With an empty
/// plan this is the uninterrupted reference.
inline RunArtifacts run_reference(
    const SystemConfig& cfg, SimDuration horizon,
    const std::vector<CheckpointPlan>& checkpoints = {}) {
    ManycoreSystem sys(cfg);
    telemetry::Tracer tracer(kTraceCapacity);
    sys.set_tracer(&tracer);
    for (const CheckpointPlan& cp : checkpoints) {
        sys.checkpoint_at(cp.at, cp.path);
    }
    return capture(sys, tracer, horizon);
}

/// Rebuilds a fresh system from `snapshot_path` and finishes the captured
/// run to its own horizon.
inline RunArtifacts run_restored(const SystemConfig& cfg,
                                 const std::string& snapshot_path,
                                 RestoreOptions opts = {}) {
    ManycoreSystem sys(cfg);
    telemetry::Tracer tracer(kTraceCapacity);
    sys.set_tracer(&tracer);
    sys.restore(load_snapshot_file(snapshot_path), opts);
    return capture(sys, tracer, sys.restored_horizon());
}

/// The epoch_workers axis of the differential matrix: same configuration,
/// different in-run worker count. The parallelism contract
/// (docs/parallelism.md) promises the artifacts are byte-identical to the
/// workers == 1 run, so tests compare these with EXPECT_EQ like any other
/// differential leg.
inline RunArtifacts run_with_workers(
    SystemConfig cfg, SimDuration horizon, int workers,
    const std::vector<CheckpointPlan>& checkpoints = {}) {
    cfg.epoch_workers = workers;
    return run_reference(cfg, horizon, checkpoints);
}

}  // namespace mcs::testsupport
