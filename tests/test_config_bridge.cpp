#include "core/config_bridge.hpp"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "app/graph_io.hpp"
#include "core/report.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

TEST(ConfigBridge, DefaultsMatchSystemConfig) {
    const SystemConfig sys = system_config_from(Config{});
    const SystemConfig ref;
    EXPECT_EQ(sys.width, ref.width);
    EXPECT_EQ(sys.height, ref.height);
    EXPECT_EQ(sys.node, ref.node);
    EXPECT_EQ(sys.scheduler, ref.scheduler);
    EXPECT_EQ(sys.mapper, ref.mapper);
    EXPECT_GT(sys.workload.arrival_rate_hz, 0.0);  // derived from occupancy
}

TEST(ConfigBridge, ParsesEveryEnum) {
    Config c;
    c.set("node", "22nm");
    c.set("scheduler", "periodic");
    c.set("mapper", "random");
    c.set("vf_policy", "min-only");
    c.set("criticality_mode", "hybrid");
    c.set("capping", "bang-bang");
    const SystemConfig sys = system_config_from(c);
    EXPECT_EQ(sys.node, TechNode::nm22);
    EXPECT_EQ(sys.scheduler, SchedulerKind::Periodic);
    EXPECT_EQ(sys.mapper, MapperKind::Random);
    EXPECT_EQ(sys.power_aware.vf_policy, TestVfPolicy::MinOnly);
    EXPECT_EQ(sys.criticality.mode, CriticalityMode::Hybrid);
    EXPECT_EQ(sys.power.mode, CappingMode::BangBang);
}

TEST(ConfigBridge, NumericKeys) {
    Config c;
    c.set("width", "4");
    c.set("height", "6");
    c.set("seed", "123");
    c.set("tdp_scale", "0.8");
    c.set("guard_band", "0.1");
    c.set("fault_rate", "0.5");
    c.set("faults", "true");
    c.set("gate_delay_ms", "5");
    c.set("test_period_ms", "250");
    const SystemConfig sys = system_config_from(c);
    EXPECT_EQ(sys.width, 4);
    EXPECT_EQ(sys.height, 6);
    EXPECT_EQ(sys.seed, 123u);
    EXPECT_DOUBLE_EQ(sys.tdp_scale, 0.8);
    EXPECT_DOUBLE_EQ(sys.power_aware.guard_band_fraction, 0.1);
    EXPECT_TRUE(sys.enable_fault_injection);
    EXPECT_DOUBLE_EQ(sys.faults.base_rate_per_core_s, 0.5);
    EXPECT_EQ(sys.power.gate_delay, 5 * kMillisecond);
    EXPECT_EQ(sys.periodic_test_period, 250 * kMillisecond);
}

TEST(ConfigBridge, ExplicitArrivalRateOverridesOccupancy) {
    Config c;
    c.set("arrival_rate_hz", "77.5");
    c.set("occupancy", "0.9");
    const SystemConfig sys = system_config_from(c);
    EXPECT_DOUBLE_EQ(sys.workload.arrival_rate_hz, 77.5);
}

TEST(ConfigBridge, OccupancyScalesRate) {
    Config lo, hi;
    lo.set("occupancy", "0.3");
    hi.set("occupancy", "0.6");
    EXPECT_NEAR(system_config_from(hi).workload.arrival_rate_hz /
                    system_config_from(lo).workload.arrival_rate_hz,
                2.0, 1e-9);
}

TEST(ConfigBridge, UnknownKeyRejected) {
    Config c;
    c.set("shceduler", "power-aware");  // typo must fail loudly
    EXPECT_THROW(system_config_from(c), RequireError);
}

TEST(ConfigBridge, BadEnumValuesRejected) {
    for (const auto& [key, value] :
         std::vector<std::pair<std::string, std::string>>{
             {"node", "7nm"},
             {"scheduler", "magic"},
             {"mapper", "teleport"},
             {"vf_policy", "sometimes"},
             {"criticality_mode", "vibes"},
             {"capping", "duct-tape"}}) {
        Config c;
        c.set(key, value);
        EXPECT_THROW(system_config_from(c), RequireError) << key;
    }
}

TEST(ConfigBridge, GraphFileFeedsLibrary) {
    const std::string path = ::testing::TempDir() + "/bridge_graph.tg";
    {
        std::ofstream out(path);
        out << "tasks 2\ntask 0 1000\ntask 1 1000\nedge 0 1 32\n";
    }
    Config c;
    c.set("graph_file", path);
    const SystemConfig sys = system_config_from(c);
    ASSERT_EQ(sys.workload.graph_library.size(), 1u);
    EXPECT_EQ(sys.workload.graph_library[0].size(), 2u);
    EXPECT_GT(sys.workload.arrival_rate_hz, 0.0);
    std::remove(path.c_str());
}

TEST(ConfigBridge, EndToEndRunFromConfig) {
    Config c;
    c.set("width", "4");
    c.set("height", "4");
    c.set("occupancy", "0.5");
    c.set("min_tasks", "2");
    c.set("max_tasks", "5");
    ManycoreSystem sys(system_config_from(c));
    const RunMetrics m = sys.run(kSecond);
    EXPECT_GT(m.apps_completed, 0u);
}

TEST(ConfigFile, ParsesAndMerges) {
    const std::string path = ::testing::TempDir() + "/mcs_cfg_test.cfg";
    {
        std::ofstream out(path);
        out << "# comment\nwidth = 6\n  height=2  \nseed=9 # inline\n\n";
    }
    Config file = Config::from_file(path);
    EXPECT_EQ(file.get_int("width", 0), 6);
    EXPECT_EQ(file.get_int("height", 0), 2);
    EXPECT_EQ(file.get_int("seed", 0), 9);
    Config overrides;
    overrides.set("seed", "42");
    file.merge(overrides);
    EXPECT_EQ(file.get_int("seed", 0), 42);
    EXPECT_EQ(file.get_int("width", 0), 6);
    std::remove(path.c_str());
    EXPECT_THROW(Config::from_file("/no/such/file.cfg"), RequireError);
}

TEST(Report, FormatMentionsKeyNumbers) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.workload.arrival_rate_hz = 200.0;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(kSecond);
    const std::string text = format_metrics(m);
    EXPECT_NE(text.find("TDP"), std::string::npos);
    EXPECT_NE(text.find("tasks/s"), std::string::npos);
    EXPECT_NE(text.find("sessions"), std::string::npos);
}

TEST(Report, CsvHasAllMetrics) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.workload.arrival_rate_hz = 200.0;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(kSecond);
    const std::string path = ::testing::TempDir() + "/mcs_report_test.csv";
    write_metrics_csv(m, path);
    std::ifstream in(path);
    std::string line;
    int rows = 0;
    bool has_violation_rate = false;
    while (std::getline(in, line)) {
        ++rows;
        if (line.rfind("tdp_violation_rate,", 0) == 0) {
            has_violation_rate = true;
        }
    }
    EXPECT_GT(rows, 45);
    EXPECT_TRUE(has_violation_rate);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace mcs
