#include "core/idle_predictor.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

TEST(IdlePredictor, ColdPredictionUsesInitialGuess) {
    IdlePredictor p(4, 0.25, 10 * kMillisecond);
    p.notify_available(0, 0);
    EXPECT_EQ(p.predict_remaining(0, 0), 10 * kMillisecond);
    EXPECT_EQ(p.expected_period(0), 10 * kMillisecond);
}

TEST(IdlePredictor, RemainingShrinksAsPeriodElapses) {
    IdlePredictor p(4, 0.25, 10 * kMillisecond);
    p.notify_available(0, 0);
    EXPECT_EQ(p.predict_remaining(0, 4 * kMillisecond), 6 * kMillisecond);
    EXPECT_EQ(p.predict_remaining(0, 20 * kMillisecond), 0u);  // overdue
}

TEST(IdlePredictor, NotInPeriodPredictsZero) {
    IdlePredictor p(4);
    EXPECT_EQ(p.predict_remaining(2, kSecond), 0u);
    p.notify_available(2, 0);
    p.notify_unavailable(2, kMillisecond);
    EXPECT_EQ(p.predict_remaining(2, 2 * kMillisecond), 0u);
}

TEST(IdlePredictor, EwmaTracksObservedPeriods) {
    IdlePredictor p(1, 0.5, 0);
    // Alternate 8 ms periods; EWMA converges toward 8 ms.
    SimTime t = 0;
    for (int i = 0; i < 10; ++i) {
        p.notify_available(0, t);
        t += 8 * kMillisecond;
        p.notify_unavailable(0, t);
        t += kMillisecond;
    }
    EXPECT_NEAR(static_cast<double>(p.expected_period(0)),
                static_cast<double>(8 * kMillisecond),
                static_cast<double>(kMillisecond) * 0.1);
    EXPECT_EQ(p.completed_periods(), 10u);
}

TEST(IdlePredictor, AdaptsToRegimeChange) {
    IdlePredictor p(1, 0.5, 0);
    SimTime t = 0;
    auto observe = [&](SimDuration len) {
        p.notify_available(0, t);
        t += len;
        p.notify_unavailable(0, t);
    };
    for (int i = 0; i < 8; ++i) {
        observe(2 * kMillisecond);
    }
    const auto before = p.expected_period(0);
    for (int i = 0; i < 8; ++i) {
        observe(40 * kMillisecond);
    }
    EXPECT_GT(p.expected_period(0), before * 10);
}

TEST(IdlePredictor, DoubleNotifyIsIdempotent) {
    IdlePredictor p(1, 0.5, 5 * kMillisecond);
    p.notify_available(0, 0);
    p.notify_available(0, 3 * kMillisecond);  // must not restart the period
    p.notify_unavailable(0, 10 * kMillisecond);
    EXPECT_EQ(p.completed_periods(), 1u);
    // Period measured from the first notify (10 ms, alpha 0.5 over 5 ms
    // initial -> 7.5 ms).
    EXPECT_NEAR(static_cast<double>(p.expected_period(0)), 7.5e6, 1e3);
    p.notify_unavailable(0, 11 * kMillisecond);  // no-op
    EXPECT_EQ(p.completed_periods(), 1u);
}

TEST(IdlePredictor, Validation) {
    EXPECT_THROW(IdlePredictor(0), RequireError);
    EXPECT_THROW(IdlePredictor(4, 0.0), RequireError);
    EXPECT_THROW(IdlePredictor(4, 1.5), RequireError);
    IdlePredictor p(2);
    EXPECT_THROW(p.notify_available(2, 0), RequireError);
    EXPECT_THROW(p.predict_remaining(2, 0), RequireError);
    p.notify_available(0, kSecond);
    EXPECT_THROW(p.notify_unavailable(0, 0), RequireError);
}

TEST(IdlePredictorSystem, PredictionReducesAbortedTests) {
    // Under heavy load, requiring a predicted idle window should cut the
    // abort count substantially without killing test throughput.
    auto run = [](bool predict) {
        SystemConfig cfg;
        cfg.seed = 77;
        cfg.power_aware.require_predicted_idle = predict;
        const double capacity = 64.0 * technology(cfg.node).max_freq_hz;
        cfg.workload.arrival_rate_hz =
            rate_for_occupancy(0.9, cfg.workload.graphs, capacity);
        ManycoreSystem sys(cfg);
        return sys.run(6 * kSecond);
    };
    const RunMetrics off = run(false);
    const RunMetrics on = run(true);
    EXPECT_LT(on.tests_aborted, off.tests_aborted / 2);
    EXPECT_GT(on.tests_completed, off.tests_completed / 3);
}

}  // namespace
}  // namespace mcs
