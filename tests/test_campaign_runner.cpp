#include "runner/campaign_runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/system_factory.hpp"
#include "runner/result_sink.hpp"
#include "runner/thread_pool.hpp"
#include "sim/time.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace mcs {
namespace {

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

std::string temp_path(const std::string& name) {
    return testing::TempDir() + name;
}

// --- parallel_for_sharded -------------------------------------------------

TEST(ParallelForSharded, CoversEveryIndexExactlyOnce) {
    for (int jobs : {1, 2, 3, 8, 100}) {
        std::vector<std::atomic<int>> hits(37);
        parallel_for_sharded(hits.size(), jobs,
                             [&](std::size_t i) { hits[i]++; });
        for (const auto& h : hits) {
            EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
        }
    }
}

TEST(ParallelForSharded, EmptyRangeIsANoop) {
    parallel_for_sharded(0, 4, [](std::size_t) { FAIL(); });
}

TEST(ParallelForSharded, PropagatesExceptions) {
    EXPECT_THROW(
        parallel_for_sharded(16, 4,
                             [](std::size_t i) {
                                 if (i == 7) {
                                     throw std::runtime_error("boom");
                                 }
                             }),
        std::runtime_error);
}

// --- sweep spec -----------------------------------------------------------

TEST(CampaignSpec, SplitsValueLists) {
    EXPECT_EQ(split_value_list("a, b ,c"),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split_value_list("solo"), (std::vector<std::string>{"solo"}));
    EXPECT_THROW(split_value_list("a,,b"), RequireError);
    EXPECT_THROW(split_value_list(""), RequireError);
}

TEST(CampaignSpec, ExtractsAxesAndStripsRunnerKeys) {
    Config cfg;
    cfg.set("width", "4");
    cfg.set("height", "4");
    cfg.set("sweep.scheduler", "power-aware, none");
    cfg.set("sweep.occupancy", "0.3, 0.6, 0.9");
    cfg.set("replicas", "2");
    cfg.set("campaign_seed", "7");
    cfg.set("jobs", "3");
    cfg.set("seconds", "1.5");

    const CampaignSpec spec = CampaignSpec::from_config(cfg);
    EXPECT_EQ(spec.replicas, 2);
    EXPECT_EQ(spec.campaign_seed, 7u);
    EXPECT_EQ(spec.default_jobs, 3);
    EXPECT_DOUBLE_EQ(spec.seconds, 1.5);
    ASSERT_EQ(spec.axes.size(), 2u);  // sorted by key
    EXPECT_EQ(spec.axes[0].key, "occupancy");
    EXPECT_EQ(spec.axes[1].key, "scheduler");
    EXPECT_EQ(spec.cell_count(), 6u);
    EXPECT_EQ(spec.replica_count(), 12u);
    EXPECT_FALSE(spec.base.has("sweep.scheduler"));
    EXPECT_FALSE(spec.base.has("replicas"));
    EXPECT_FALSE(spec.base.has("jobs"));
    EXPECT_TRUE(spec.base.has("width"));
}

TEST(CampaignSpec, CellPointDecodesCartesianOrder) {
    CampaignSpec spec;
    spec.axes = {{"a", {"1", "2"}}, {"b", {"x", "y", "z"}}};
    // Last axis fastest: cell 4 = a index 1, b index 1.
    const auto point = spec.cell_point(4);
    ASSERT_EQ(point.size(), 2u);
    EXPECT_EQ(point[0], (std::pair<std::string, std::string>{"a", "2"}));
    EXPECT_EQ(point[1], (std::pair<std::string, std::string>{"b", "y"}));
    EXPECT_EQ(spec.cell_label(4), "a=2 b=y");
    EXPECT_THROW(spec.cell_point(6), RequireError);
}

TEST(CampaignSpec, RejectsKeyBothSweptAndFixed) {
    Config cfg;
    cfg.set("occupancy", "0.5");
    cfg.set("sweep.occupancy", "0.3, 0.6");
    EXPECT_THROW(CampaignSpec::from_config(cfg), RequireError);
}

TEST(CampaignSpec, ReplicaSeedsAreStableAndDistinct) {
    CampaignSpec spec;
    spec.campaign_seed = 42;
    spec.replicas = 8;
    const std::uint64_t s0 = spec.replica_seed(0);
    EXPECT_EQ(s0, Rng::stream_seed(42, 0) >> 1);  // int64-safe range
    for (int r = 1; r < 8; ++r) {
        EXPECT_NE(spec.replica_seed(r), s0);
        EXPECT_EQ(spec.replica_seed(r), spec.replica_seed(r));
    }
    // The derived seed lands in the replica config.
    const Config cfg = spec.replica_config(0, 3);
    EXPECT_EQ(static_cast<std::uint64_t>(cfg.get_int("seed", 0)),
              spec.replica_seed(3));
}

// --- campaign runner ------------------------------------------------------

CampaignSpec small_system_spec() {
    Config cfg;
    cfg.set("width", "4");
    cfg.set("height", "4");
    cfg.set("occupancy", "0.8");
    cfg.set("sweep.scheduler", "power-aware, none");
    cfg.set("replicas", "2");
    cfg.set("campaign_seed", "11");
    cfg.set("seconds", "0.2");
    return CampaignSpec::from_config(cfg);
}

TEST(CampaignRunner, ParallelEqualsSequential) {
    CampaignRunner runner(small_system_spec());
    const CampaignResult seq = runner.run(1);
    ASSERT_EQ(seq.failed_count(), 0u);

    const std::string seq_csv = temp_path("campaign_seq.csv");
    const std::string seq_rep = temp_path("replicas_seq.csv");
    write_campaign_csv(seq, seq_csv);
    write_replica_csv(seq, seq_rep);

    for (int jobs : {2, 8}) {
        const CampaignResult par = CampaignRunner(small_system_spec())
                                       .run(jobs);
        ASSERT_EQ(par.replicas.size(), seq.replicas.size());
        for (std::size_t i = 0; i < seq.replicas.size(); ++i) {
            const ReplicaResult& a = seq.replicas[i];
            const ReplicaResult& b = par.replicas[i];
            EXPECT_EQ(a.seed, b.seed);
            // Bit-identical metrics, not approximately equal.
            EXPECT_EQ(a.metrics.work_cycles_per_s,
                      b.metrics.work_cycles_per_s);
            EXPECT_EQ(a.metrics.energy_total_j, b.metrics.energy_total_j);
            EXPECT_EQ(a.metrics.mean_power_w, b.metrics.mean_power_w);
            EXPECT_EQ(a.metrics.tasks_completed, b.metrics.tasks_completed);
            EXPECT_EQ(a.metrics.tests_completed, b.metrics.tests_completed);
        }
        const std::string par_csv =
            temp_path("campaign_j" + std::to_string(jobs) + ".csv");
        const std::string par_rep =
            temp_path("replicas_j" + std::to_string(jobs) + ".csv");
        write_campaign_csv(par, par_csv);
        write_replica_csv(par, par_rep);
        EXPECT_EQ(read_file(seq_csv), read_file(par_csv)) << "jobs=" << jobs;
        EXPECT_EQ(read_file(seq_rep), read_file(par_rep)) << "jobs=" << jobs;
        EXPECT_FALSE(read_file(par_csv).empty());
    }
}

TEST(CampaignRunner, ThrowingReplicaDoesNotPoisonOthers) {
    Config cfg;
    cfg.set("sweep.x", "a, b, c");
    cfg.set("replicas", "2");
    CampaignSpec spec = CampaignSpec::from_config(cfg);
    CampaignRunner runner(std::move(spec));
    runner.set_replica_fn([](const Config& replica_cfg, double) {
        if (replica_cfg.get_string("x", "") == "b") {
            throw std::runtime_error("injected failure");
        }
        RunMetrics m;
        m.work_cycles_per_s = 1.0;
        return m;
    });
    const CampaignResult res = runner.run(4);
    ASSERT_EQ(res.replicas.size(), 6u);
    EXPECT_EQ(res.failed_count(), 2u);
    EXPECT_EQ(res.ok_count(), 4u);
    for (const ReplicaResult& r : res.replicas) {
        if (r.cell == 1) {
            EXPECT_FALSE(r.ok);
            EXPECT_EQ(r.error, "injected failure");
        } else {
            EXPECT_TRUE(r.ok);
            EXPECT_EQ(r.metrics.work_cycles_per_s, 1.0);
        }
    }
    // Aggregation skips the failed cell but keeps the healthy ones.
    EXPECT_TRUE(res.cell_stats(1, campaign_metrics()[0].get).empty());
    EXPECT_EQ(res.cell_stats(0, campaign_metrics()[0].get).count(), 2u);
    // The summary and CSVs stay writable with failures present.
    EXPECT_NE(format_campaign_summary(res).find("injected failure"),
              std::string::npos);
    write_campaign_csv(res, temp_path("failed_cells.csv"));
    const std::string csv = read_file(temp_path("failed_cells.csv"));
    EXPECT_NE(csv.find("nan"), std::string::npos);
}

TEST(CampaignRunner, BadConfigCellFailsInPlace) {
    Config cfg;
    cfg.set("width", "4");
    cfg.set("height", "4");
    cfg.set("occupancy", "0.5");
    cfg.set("sweep.node", "16nm, 3nm");  // 3nm is not a known node
    cfg.set("seconds", "0.1");
    CampaignRunner runner(CampaignSpec::from_config(cfg));
    const CampaignResult res = runner.run(2);
    ASSERT_EQ(res.replicas.size(), 2u);
    EXPECT_TRUE(res.replicas[0].ok);
    EXPECT_FALSE(res.replicas[1].ok);
    EXPECT_NE(res.replicas[1].error.find("unknown technology node"),
              std::string::npos);
}

TEST(CampaignRunner, FindCellMatchesPoints) {
    CampaignSpec spec;
    spec.axes = {{"a", {"1", "2"}}, {"b", {"x", "y"}}};
    CampaignRunner runner(spec);
    runner.set_replica_fn(
        [](const Config&, double) { return RunMetrics{}; });
    const CampaignResult res = runner.run(1);
    const std::vector<std::pair<std::string, std::string>> want{{"a", "2"},
                                                                {"b", "x"}};
    EXPECT_EQ(res.find_cell(want), 2u);
    const std::vector<std::pair<std::string, std::string>> missing{
        {"a", "9"}};
    EXPECT_THROW(res.find_cell(missing), RequireError);
}

TEST(CampaignRunner, ProgressReachesTotal) {
    Config cfg;
    cfg.set("sweep.x", "a, b");
    cfg.set("replicas", "3");
    CampaignRunner runner(CampaignSpec::from_config(cfg));
    runner.set_replica_fn(
        [](const Config&, double) { return RunMetrics{}; });
    std::size_t last_done = 0;
    std::size_t calls = 0;
    runner.set_progress([&](std::size_t done, std::size_t total) {
        EXPECT_EQ(total, 6u);
        EXPECT_GE(done, 1u);
        last_done = std::max(last_done, done);
        ++calls;
    });
    runner.run(3);
    EXPECT_EQ(calls, 6u);
    EXPECT_EQ(last_done, 6u);
}

TEST(CampaignRunner, ForksReplicasFromWarmCheckpoint) {
    // Warm up one system to a checkpoint, then sweep a policy knob with
    // every cell restoring from that snapshot. Replica configs differ from
    // the capture (seed + swept knob), so the spec sets restore_relax; the
    // structural fingerprint still guards the fork.
    const std::string snap = temp_path("campaign_fork.snapshot.json");
    Config warm;
    warm.set("side", "4");
    warm.set("occupancy", "0.5");
    {
        auto sys = make_system(warm);
        sys->checkpoint_at(100 * kMillisecond, snap);
        sys->run(from_seconds(0.3));
    }

    Config spec_cfg = warm;
    spec_cfg.set("restore", snap);
    spec_cfg.set("restore_relax", "true");
    spec_cfg.set("seconds", "0.3");
    spec_cfg.set("replicas", "1");
    spec_cfg.set("sweep.guard_band", "0.02, 0.08");
    CampaignRunner runner(CampaignSpec::from_config(spec_cfg));
    const CampaignResult result = runner.run(2);

    ASSERT_EQ(result.replicas.size(), 2u);
    for (const ReplicaResult& r : result.replicas) {
        ASSERT_TRUE(r.ok) << r.error;
        // Forked runs carry the warm-up's history: by the checkpoint the
        // warm run had already admitted work, so a fork cannot start cold.
        EXPECT_EQ(r.metrics.sim_time, from_seconds(0.3));
        EXPECT_GT(r.metrics.apps_completed, 0u);
    }
    std::remove(snap.c_str());
}

}  // namespace
}  // namespace mcs
