#include "app/task_graph.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

TaskGraph diamond() {
    //   0
    //  / \
    // 1   2
    //  \ /
    //   3
    std::vector<Task> tasks(4);
    tasks[0].cycles = 100;
    tasks[0].successors = {{1, 10}, {2, 20}};
    tasks[1].cycles = 200;
    tasks[1].successors = {{3, 30}};
    tasks[2].cycles = 50;
    tasks[2].successors = {{3, 40}};
    tasks[3].cycles = 300;
    return TaskGraph(std::move(tasks));
}

TEST(TaskGraph, DiamondInvariants) {
    const TaskGraph g = diamond();
    EXPECT_EQ(g.size(), 4u);
    EXPECT_EQ(g.edge_count(), 4u);
    EXPECT_EQ(g.total_cycles(), 650u);
    EXPECT_EQ(g.total_comm_bytes(), 100u);
    EXPECT_EQ(g.pred_count(0), 0u);
    EXPECT_EQ(g.pred_count(1), 1u);
    EXPECT_EQ(g.pred_count(3), 2u);
    ASSERT_EQ(g.sources().size(), 1u);
    EXPECT_EQ(g.sources()[0], 0u);
}

TEST(TaskGraph, CriticalPath) {
    const TaskGraph g = diamond();
    // 0 -> 1 -> 3 = 100 + 200 + 300 = 600
    EXPECT_EQ(g.critical_path_cycles(), 600u);
}

TEST(TaskGraph, SingleTask) {
    std::vector<Task> tasks(1);
    tasks[0].cycles = 42;
    const TaskGraph g(std::move(tasks));
    EXPECT_EQ(g.size(), 1u);
    EXPECT_EQ(g.critical_path_cycles(), 42u);
    EXPECT_EQ(g.sources().size(), 1u);
}

TEST(TaskGraph, IndependentTasksAllSources) {
    std::vector<Task> tasks(3);
    for (auto& t : tasks) {
        t.cycles = 10;
    }
    const TaskGraph g(std::move(tasks));
    EXPECT_EQ(g.sources().size(), 3u);
    EXPECT_EQ(g.critical_path_cycles(), 10u);
}

TEST(TaskGraph, ChainCriticalPathIsSum) {
    std::vector<Task> tasks(5);
    for (std::size_t i = 0; i < 5; ++i) {
        tasks[i].cycles = 10 * (i + 1);
        if (i + 1 < 5) {
            tasks[i].successors = {{static_cast<TaskIndex>(i + 1), 1}};
        }
    }
    const TaskGraph g(std::move(tasks));
    EXPECT_EQ(g.critical_path_cycles(), 150u);
}

TEST(TaskGraph, RejectsEmpty) {
    EXPECT_THROW(TaskGraph({}), RequireError);
}

TEST(TaskGraph, RejectsDanglingEdge) {
    std::vector<Task> tasks(2);
    tasks[0].cycles = 1;
    tasks[0].successors = {{5, 10}};  // no task 5
    tasks[1].cycles = 1;
    EXPECT_THROW(TaskGraph(std::move(tasks)), RequireError);
}

TEST(TaskGraph, RejectsCycle) {
    std::vector<Task> tasks(3);
    tasks[0].cycles = 1;
    tasks[0].successors = {{1, 1}};
    tasks[1].cycles = 1;
    tasks[1].successors = {{2, 1}};
    tasks[2].cycles = 1;
    tasks[2].successors = {{1, 1}};  // 1 -> 2 -> 1
    EXPECT_THROW(TaskGraph(std::move(tasks)), RequireError);
}

TEST(TaskGraph, RejectsSelfLoopViaNoSource) {
    std::vector<Task> tasks(1);
    tasks[0].cycles = 1;
    tasks[0].successors = {{0, 1}};
    EXPECT_THROW(TaskGraph(std::move(tasks)), RequireError);
}

TEST(TaskGraph, TaskAccessorBoundsChecked) {
    const TaskGraph g = diamond();
    EXPECT_THROW(g.task(4), RequireError);
    EXPECT_THROW(g.pred_count(4), RequireError);
}

}  // namespace
}  // namespace mcs
