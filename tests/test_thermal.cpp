#include "thermal/thermal_model.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

TEST(Thermal, StartsAtAmbient) {
    ThermalModel t(4, 4);
    for (double temp : t.temps_c()) {
        EXPECT_DOUBLE_EQ(temp, t.ambient_c());
    }
    EXPECT_DOUBLE_EQ(t.max_temp_c(), t.ambient_c());
    EXPECT_DOUBLE_EQ(t.mean_temp_c(), t.ambient_c());
}

TEST(Thermal, SingleCoreReachesIsolatedSteadyStateApproximately) {
    // 1x1 grid has no lateral neighbors, so the analytic isolated solution
    // is exact: T = ambient + P / G_vert.
    ThermalModel t(1, 1);
    const std::vector<double> power{2.0};
    for (int i = 0; i < 20000; ++i) {
        t.step(power, 1e-3);
    }
    EXPECT_NEAR(t.temp_c(0), t.isolated_steady_state_c(2.0), 0.01);
}

TEST(Thermal, HeatingIsMonotonicTowardSteadyState) {
    ThermalModel t(1, 1);
    const std::vector<double> power{1.5};
    double prev = t.temp_c(0);
    for (int i = 0; i < 100; ++i) {
        t.step(power, 1e-3);
        EXPECT_GE(t.temp_c(0), prev);
        prev = t.temp_c(0);
    }
    EXPECT_LT(prev, t.isolated_steady_state_c(1.5));
}

TEST(Thermal, CoolsBackToAmbient) {
    ThermalModel t(1, 1);
    std::vector<double> power{2.0};
    for (int i = 0; i < 5000; ++i) {
        t.step(power, 1e-3);
    }
    const double hot = t.temp_c(0);
    power[0] = 0.0;
    for (int i = 0; i < 50000; ++i) {
        t.step(power, 1e-3);
    }
    EXPECT_LT(t.temp_c(0), hot);
    EXPECT_NEAR(t.temp_c(0), t.ambient_c(), 0.01);
}

TEST(Thermal, LateralCouplingSpreadsHeat) {
    ThermalModel t(3, 1);
    std::vector<double> power{0.0, 2.0, 0.0};
    for (int i = 0; i < 2000; ++i) {
        t.step(power, 1e-3);
    }
    // The hot core's neighbors warm above ambient, the hot core stays
    // hottest, and with lateral spreading it sits below the isolated bound.
    EXPECT_GT(t.temp_c(0), t.ambient_c() + 1.0);
    EXPECT_GT(t.temp_c(1), t.temp_c(0));
    EXPECT_DOUBLE_EQ(t.temp_c(0), t.temp_c(2));  // symmetry
    EXPECT_LT(t.temp_c(1), t.isolated_steady_state_c(2.0));
}

TEST(Thermal, HotterCoreStaysHotter) {
    ThermalModel t(2, 2);
    std::vector<double> power{2.0, 1.0, 0.5, 0.0};
    for (int i = 0; i < 3000; ++i) {
        t.step(power, 1e-3);
    }
    EXPECT_GT(t.temp_c(0), t.temp_c(1));
    EXPECT_GT(t.temp_c(1), t.temp_c(2));
    EXPECT_GT(t.temp_c(2), t.temp_c(3));
    EXPECT_DOUBLE_EQ(t.max_temp_c(), t.temp_c(0));
    EXPECT_GT(t.mean_temp_c(), t.ambient_c());
}

TEST(Thermal, LongStepIsSubdividedStably) {
    ThermalModel a(2, 2), b(2, 2);
    const std::vector<double> power{2.0, 0.0, 0.0, 2.0};
    // One 50 ms step must equal 50 steps of 1 ms (both subdivide to the
    // same max_dt grid).
    a.step(power, 0.05);
    for (int i = 0; i < 50; ++i) {
        b.step(power, 1e-3);
    }
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_NEAR(a.temp_c(i), b.temp_c(i), 1e-9);
    }
}

TEST(Thermal, EnergyConservationAtSteadyState) {
    // At steady state, input power equals heat flowing to ambient:
    // sum(P) = Gv * sum(T - ambient).
    ThermalParams params;
    ThermalModel t(3, 3, params);
    std::vector<double> power(9, 0.0);
    power[4] = 3.0;
    for (int i = 0; i < 100000; ++i) {
        t.step(power, 1e-3);
    }
    double outflow = 0.0;
    for (double temp : t.temps_c()) {
        outflow += params.g_vertical_w_per_k * (temp - params.ambient_c);
    }
    EXPECT_NEAR(outflow, 3.0, 0.01);
}

TEST(Thermal, ValidatesInputs) {
    ThermalModel t(2, 2);
    EXPECT_THROW(t.step(std::vector<double>(3, 0.0), 1e-3), RequireError);
    EXPECT_THROW(t.step(std::vector<double>(4, 0.0), -1.0), RequireError);
    EXPECT_THROW(t.temp_c(4), RequireError);
}

TEST(Thermal, RejectsUnstableMaxStep) {
    ThermalParams p;
    p.max_dt_s = 1.0;  // way beyond C/(Gv + 4 Gl)
    EXPECT_THROW(ThermalModel(2, 2, p), RequireError);
    p = ThermalParams{};
    p.heat_capacity_j_per_k = 0.0;
    EXPECT_THROW(ThermalModel(2, 2, p), RequireError);
}

}  // namespace
}  // namespace mcs
