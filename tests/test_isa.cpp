#include "isa/isa.hpp"
#include "isa/sbst_programs.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

Program tiny(std::vector<Instr> code, FunctionalUnit target =
                                          FunctionalUnit::Alu) {
    Program p;
    p.name = "tiny";
    p.target = target;
    p.code = std::move(code);
    return p;
}

TEST(CoreModel, DeterministicSignatures) {
    SbstLibrary lib;
    CoreModel core;
    for (const Program& p : lib.programs()) {
        const auto a = core.run(p);
        const auto b = core.run(p);
        EXPECT_EQ(a.signature, b.signature) << p.name;
        EXPECT_EQ(a.retired, b.retired) << p.name;
        EXPECT_FALSE(a.hit_step_limit) << p.name;
    }
}

TEST(CoreModel, DifferentProgramsDifferentSignatures) {
    SbstLibrary lib;
    CoreModel core;
    std::set<std::uint64_t> sigs;
    for (const Program& p : lib.programs()) {
        sigs.insert(core.run(p).signature);
    }
    EXPECT_EQ(sigs.size(), lib.programs().size());
}

TEST(CoreModel, ArithmeticSemantics) {
    // Compute (7 + 5) * 3 - 2 = 34 and store/reload it; verify through a
    // program variant that loads the expected constant: both must produce
    // identical write sequences, hence identical signatures.
    CoreModel core;
    const auto computed = core.run(tiny({
        {Opcode::AddI, 1, 0, 0, 7},
        {Opcode::AddI, 2, 0, 0, 5},
        {Opcode::Add, 3, 1, 2, 0},    // 12
        {Opcode::AddI, 4, 0, 0, 3},
        {Opcode::Mul, 3, 3, 4, 0},    // 36
        {Opcode::AddI, 3, 3, 0, -2},  // 34
        {Opcode::Halt, 0, 0, 0, 0},
    }));
    const auto expected = core.run(tiny({
        {Opcode::AddI, 1, 0, 0, 7},
        {Opcode::AddI, 2, 0, 0, 5},
        {Opcode::AddI, 3, 0, 0, 12},
        {Opcode::AddI, 4, 0, 0, 3},
        {Opcode::AddI, 3, 0, 0, 36},
        {Opcode::AddI, 3, 0, 0, 34},
        {Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(computed.signature, expected.signature);
}

TEST(CoreModel, R0IsHardwiredZero) {
    CoreModel core;
    const auto a = core.run(tiny({
        {Opcode::AddI, 0, 0, 0, 99},  // write to r0 is dropped
        {Opcode::Add, 1, 0, 0, 0},    // r1 = 0
        {Opcode::Halt, 0, 0, 0, 0},
    }));
    const auto b = core.run(tiny({
        {Opcode::AddI, 0, 0, 0, 99},
        {Opcode::AddI, 1, 0, 0, 0},   // r1 = 0 via immediate
        {Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(a.signature, b.signature);
}

TEST(CoreModel, DivisionByZeroIsDefined) {
    CoreModel core;
    const auto r = core.run(tiny({
        {Opcode::AddI, 1, 0, 0, 10},
        {Opcode::Div, 2, 1, 0, 0},  // 10 / 0 -> all-ones
        {Opcode::Rem, 3, 1, 0, 0},  // 10 % 0 -> 10
        {Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_GT(r.retired, 0u);  // must not trap
}

TEST(CoreModel, BranchesFollowComparisons) {
    CoreModel core;
    // Taken Beq skips the accumulator bump; signature must differ from the
    // not-taken variant.
    const auto taken = core.run(tiny({
        {Opcode::Beq, 0, 0, 0, 2},      // r0 == r0: taken, skip next
        {Opcode::AddI, 1, 0, 0, 1},
        {Opcode::AddI, 2, 0, 0, 2},
        {Opcode::Halt, 0, 0, 0, 0},
    }));
    const auto not_taken = core.run(tiny({
        {Opcode::Bne, 0, 0, 0, 2},      // r0 != r0: not taken
        {Opcode::AddI, 1, 0, 0, 1},
        {Opcode::AddI, 2, 0, 0, 2},
        {Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_NE(taken.signature, not_taken.signature);
    EXPECT_EQ(taken.retired, 3u);      // branch, addi r2, halt
    EXPECT_EQ(not_taken.retired, 4u);
}

TEST(CoreModel, MemoryRoundTrips) {
    CoreModel core;
    const auto r = core.run(tiny({
        {Opcode::AddI, 1, 0, 0, 1234},
        {Opcode::Sw, 0, 0, 1, 17},
        {Opcode::Lw, 2, 0, 0, 17},
        {Opcode::Sub, 3, 2, 1, 0},  // must be zero
        {Opcode::Halt, 0, 0, 0, 0},
    }));
    const auto ref = core.run(tiny({
        {Opcode::AddI, 1, 0, 0, 1234},
        {Opcode::Sw, 0, 0, 1, 17},
        {Opcode::AddI, 2, 0, 0, 1234},
        {Opcode::AddI, 3, 0, 0, 0},
        {Opcode::Halt, 0, 0, 0, 0},
    }));
    EXPECT_EQ(r.signature, ref.signature);
}

TEST(CoreModel, StepLimitIsReported) {
    CoreModel core;
    // Infinite loop (jump to self).
    const auto r = core.run(tiny({{Opcode::Jmp, 0, 0, 0, 0}}), 1000);
    EXPECT_TRUE(r.hit_step_limit);
    EXPECT_EQ(r.retired, 1000u);
}

TEST(CoreModel, OutOfBoundsJumpThrowsWithoutFault) {
    CoreModel core;
    EXPECT_THROW(core.run(tiny({{Opcode::Jmp, 0, 0, 0, 100}})),
                 RequireError);
}

TEST(CoreModel, EmptyProgramRejected) {
    CoreModel core;
    Program p;
    p.code.clear();
    EXPECT_THROW(core.run(p), RequireError);
}

TEST(CoreModel, InjectedAluFaultChangesSignature) {
    SbstLibrary lib;
    CoreModel core;
    const Program& p = lib.program_for(FunctionalUnit::Alu);
    const auto golden = core.run(p).signature;
    const auto faulty = core.run_with_fault(
        p, FaultSite{FunctionalUnit::Alu, 0, 7, true});
    EXPECT_NE(faulty.signature, golden);
}

TEST(CoreModel, FaultyMisdecodeNeverThrows) {
    SbstLibrary lib;
    CoreModel core;
    // Every fetch/decode fault over every program must terminate cleanly
    // (wandering programs become detectable hangs, not crashes).
    for (const Program& p : lib.programs()) {
        for (const FaultSite& site :
             SbstLibrary::fault_sites(FunctionalUnit::FetchDecode)) {
            EXPECT_NO_THROW(core.run_with_fault(p, site, 100'000));
        }
    }
}

TEST(SbstLibrary, OneProgramPerUnit) {
    SbstLibrary lib;
    EXPECT_EQ(lib.programs().size(), kFunctionalUnitCount);
    for (std::size_t u = 0; u < kFunctionalUnitCount; ++u) {
        const auto unit = static_cast<FunctionalUnit>(u);
        EXPECT_EQ(lib.program_for(unit).target, unit);
    }
}

TEST(SbstLibrary, TargetCoverageIsHigh) {
    SbstLibrary lib;
    for (const Program& p : lib.programs()) {
        const double c = lib.measure_coverage(p, p.target);
        EXPECT_GE(c, 0.9) << p.name << " covers only " << c
                          << " of its target unit";
    }
}

TEST(SbstLibrary, RegfileMarchCatchesEverySampledSite) {
    SbstLibrary lib;
    const double c = lib.measure_coverage(
        lib.program_for(FunctionalUnit::RegisterFile),
        FunctionalUnit::RegisterFile);
    EXPECT_GE(c, 0.95);
}

TEST(SbstLibrary, BranchStormCatchesBothStuckDirections) {
    SbstLibrary lib;
    EXPECT_DOUBLE_EQ(
        lib.measure_coverage(lib.program_for(FunctionalUnit::BranchUnit),
                             FunctionalUnit::BranchUnit),
        1.0);
}

TEST(SbstLibrary, FaultSiteEnumerations) {
    EXPECT_EQ(SbstLibrary::fault_sites(FunctionalUnit::Alu).size(), 64u);
    EXPECT_EQ(SbstLibrary::fault_sites(FunctionalUnit::BranchUnit).size(),
              2u);
    EXPECT_EQ(SbstLibrary::fault_sites(FunctionalUnit::FetchDecode).size(),
              kOpcodeCount * 3 * 2);
    // Register file: 16 regs x 7 sampled bits x 2 polarities.
    EXPECT_EQ(
        SbstLibrary::fault_sites(FunctionalUnit::RegisterFile).size(),
        16u * 7u * 2u);
}

TEST(SbstLibrary, MeasuredSuiteIsValid) {
    SbstLibrary lib;
    const TestSuite suite = lib.measured_suite();
    EXPECT_EQ(suite.routine_count(), kFunctionalUnitCount);
    for (std::size_t u = 0; u < kFunctionalUnitCount; ++u) {
        EXPECT_GE(suite.coverage_of(static_cast<FunctionalUnit>(u)), 0.9);
    }
    EXPECT_GT(suite.total_cycles(), 100'000u);
    EXPECT_GT(suite.mean_activity(), 1.0);
}

TEST(SbstLibrary, GoldenSignaturesStable) {
    // Determinism lock: if the ISA or the programs change, these values
    // change -- update deliberately.
    SbstLibrary a, b;
    for (std::size_t i = 0; i < a.programs().size(); ++i) {
        EXPECT_EQ(a.golden_signature(a.programs()[i]),
                  b.golden_signature(b.programs()[i]));
    }
}

TEST(SbstLibrary, OpcodeNamesAndUnits) {
    EXPECT_STREQ(to_string(Opcode::Add), "add");
    EXPECT_STREQ(to_string(Opcode::Halt), "halt");
    EXPECT_EQ(unit_of(Opcode::Mul), FunctionalUnit::Fpu);
    EXPECT_EQ(unit_of(Opcode::Lw), FunctionalUnit::Lsu);
    EXPECT_EQ(unit_of(Opcode::Lui), FunctionalUnit::RegisterFile);
    EXPECT_EQ(unit_of(Opcode::Beq), FunctionalUnit::BranchUnit);
}

}  // namespace
}  // namespace mcs
