#include "sim/time.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

TEST(Time, UnitHelpers) {
    EXPECT_EQ(nanoseconds(5), 5u);
    EXPECT_EQ(microseconds(2), 2000u);
    EXPECT_EQ(milliseconds(3), 3'000'000u);
    EXPECT_EQ(seconds(1), 1'000'000'000u);
}

TEST(Time, Conversions) {
    EXPECT_DOUBLE_EQ(to_seconds(seconds(2)), 2.0);
    EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(7)), 7.0);
    EXPECT_DOUBLE_EQ(to_microseconds(microseconds(9)), 9.0);
    EXPECT_EQ(from_seconds(1.5), 1'500'000'000u);
    EXPECT_EQ(from_seconds(0.0), 0u);
}

TEST(Time, FromSecondsRounds) {
    // 1 ns = 1e-9 s; 0.4 ns rounds down, 0.6 ns rounds up.
    EXPECT_EQ(from_seconds(0.4e-9), 0u);
    EXPECT_EQ(from_seconds(0.6e-9), 1u);
}

TEST(Time, CyclesIn) {
    EXPECT_EQ(cycles_in(seconds(1), 1e9), 1'000'000'000u);
    EXPECT_EQ(cycles_in(microseconds(1), 2e9), 2000u);
    EXPECT_EQ(cycles_in(0, 1e9), 0u);
}

TEST(Time, DurationForCyclesRoundsUp) {
    // 3 cycles at 2 GHz = 1.5 ns -> must round up to 2 ns so the work is
    // complete when the event fires.
    EXPECT_EQ(duration_for_cycles(3, 2e9), 2u);
    EXPECT_EQ(duration_for_cycles(2, 2e9), 1u);
    EXPECT_EQ(duration_for_cycles(0, 2e9), 0u);
}

TEST(Time, DurationForCyclesMatchesCyclesIn) {
    // Round trip: executing for duration_for_cycles(n) at f must retire at
    // least n cycles.
    for (std::uint64_t n : {1ull, 17ull, 1'000'003ull}) {
        const double f = 1.7e9;
        const SimDuration d = duration_for_cycles(n, f);
        EXPECT_GE(cycles_in(d, f), n - 1);  // floor vs ceil slack of 1
    }
}

TEST(Time, DurationForCyclesRejectsBadFrequency) {
    EXPECT_THROW(duration_for_cycles(1, 0.0), RequireError);
    EXPECT_THROW(duration_for_cycles(1, -1.0), RequireError);
}

}  // namespace
}  // namespace mcs
