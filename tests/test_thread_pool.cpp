#include "runner/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mcs {
namespace {

TEST(ParallelForSharded, CoversEveryIndexOnce) {
    std::vector<std::atomic<int>> hits(101);
    parallel_for_sharded(hits.size(), 4, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (const auto& h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(TaskPool, RunsSubmittedTasks) {
    TaskPool pool(3);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i) {
        ASSERT_TRUE(pool.submit([&sum, i] { sum.fetch_add(i); }));
    }
    pool.wait_idle();
    EXPECT_EQ(sum.load(), 5050);
    EXPECT_EQ(pool.completed_tasks(), 100u);
    EXPECT_EQ(pool.failed_tasks(), 0u);
    EXPECT_EQ(pool.worker_count(), 3);
}

TEST(TaskPool, ShutdownWhileBusyDrainsQueuedWork) {
    // One worker, one long task holding it busy, then a pile of queued
    // tasks: shutdown() must reject NEW work but complete everything
    // already accepted (the daemon's SIGTERM drain contract).
    TaskPool pool(1);
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> done{0};
    ASSERT_TRUE(pool.submit([&] {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return release; });
        done.fetch_add(1);
    }));
    for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(pool.submit([&done] { done.fetch_add(1); }));
    }
    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        {
            std::lock_guard<std::mutex> lock(m);
            release = true;
        }
        cv.notify_one();
    });
    pool.shutdown();  // blocks until the drain is complete
    releaser.join();
    EXPECT_EQ(done.load(), 11);
    EXPECT_FALSE(pool.accepting());
    EXPECT_FALSE(pool.submit([] {}));  // post-shutdown work is rejected
}

TEST(TaskPool, ShutdownIsIdempotent) {
    TaskPool pool(2);
    ASSERT_TRUE(pool.submit([] {}));
    pool.shutdown();
    pool.shutdown();  // second call must be a no-op, not a crash/hang
    EXPECT_EQ(pool.completed_tasks(), 1u);
}

TEST(TaskPool, TaskExceptionsAreIsolated) {
    // A throwing task must not kill its worker or poison later tasks.
    TaskPool pool(1);
    std::atomic<int> ran{0};
    ASSERT_TRUE(pool.submit([] { throw std::runtime_error("boom"); }));
    ASSERT_TRUE(pool.submit([&ran] { ran.fetch_add(1); }));
    ASSERT_TRUE(pool.submit([] { throw 42; }));  // non-std exceptions too
    ASSERT_TRUE(pool.submit([&ran] { ran.fetch_add(1); }));
    pool.wait_idle();
    EXPECT_EQ(ran.load(), 2);
    EXPECT_EQ(pool.failed_tasks(), 2u);
    EXPECT_EQ(pool.completed_tasks(), 2u);
}

TEST(TaskPool, BoundedQueueRejectsOverflow) {
    // One worker parked on a gate; capacity 2 means two queued tasks are
    // admitted and the third submit is refused (the HTTP 429 path).
    TaskPool pool(1, 2);
    std::mutex m;
    std::condition_variable cv;
    bool release = false;
    ASSERT_TRUE(pool.submit([&] {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return release; });
    }));
    // The busy task may still be in the queue for an instant; wait until
    // the worker picked it up so capacity accounting is deterministic.
    while (pool.queue_depth() != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_TRUE(pool.submit([] {}));
    EXPECT_TRUE(pool.submit([] {}));
    EXPECT_FALSE(pool.submit([] {}));  // queue full -> shed load
    EXPECT_EQ(pool.queue_depth(), 2u);
    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_one();
    pool.shutdown();
    EXPECT_EQ(pool.completed_tasks(), 3u);
}

TEST(TaskPool, WorkerCountDefaultsToHardware) {
    TaskPool pool(0);
    EXPECT_EQ(pool.worker_count(), hardware_jobs());
    TaskPool pinned(-3);
    EXPECT_EQ(pinned.worker_count(), hardware_jobs());
}

}  // namespace
}  // namespace mcs
