#include "sbst/fault_model.hpp"
#include "sbst/test_suite.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

TEST(TestSuite, StandardSuiteInvariants) {
    const TestSuite suite = TestSuite::standard();
    EXPECT_EQ(suite.routine_count(), 6u);
    EXPECT_GT(suite.total_cycles(), 1'000'000u);
    EXPECT_LT(suite.total_cycles(), 100'000'000u);
    // SBST is deliberately hotter than typical workload.
    EXPECT_GT(suite.mean_activity(), 1.0);
}

TEST(TestSuite, CoverageOfEveryUnitIsHigh) {
    const TestSuite suite = TestSuite::standard();
    for (std::size_t u = 0; u < kFunctionalUnitCount; ++u) {
        const double c = suite.coverage_of(static_cast<FunctionalUnit>(u));
        EXPECT_GE(c, 0.85) << to_string(static_cast<FunctionalUnit>(u));
        EXPECT_LE(c, 1.0);
    }
}

TEST(TestSuite, CoverageComposesAcrossRoutines) {
    TestSuite suite({
        {FunctionalUnit::Alu, "a", 100, 0.5, 1.0},
        {FunctionalUnit::Alu, "b", 100, 0.5, 1.0},
        {FunctionalUnit::Fpu, "c", 100, 0.9, 1.0},
    });
    EXPECT_DOUBLE_EQ(suite.coverage_of(FunctionalUnit::Alu), 0.75);
    EXPECT_DOUBLE_EQ(suite.coverage_of(FunctionalUnit::Fpu), 0.9);
    EXPECT_DOUBLE_EQ(suite.coverage_of(FunctionalUnit::Lsu), 0.0);
}

TEST(TestSuite, MeanActivityIsCycleWeighted) {
    TestSuite suite({
        {FunctionalUnit::Alu, "a", 100, 1.0, 1.0},
        {FunctionalUnit::Fpu, "b", 300, 1.0, 2.0},
    });
    EXPECT_DOUBLE_EQ(suite.mean_activity(), (100.0 + 600.0) / 400.0);
    EXPECT_EQ(suite.total_cycles(), 400u);
}

TEST(TestSuite, ValidatesRoutines) {
    EXPECT_THROW(TestSuite({}), RequireError);
    EXPECT_THROW(TestSuite({{FunctionalUnit::Alu, "z", 0, 0.5, 1.0}}),
                 RequireError);
    EXPECT_THROW(TestSuite({{FunctionalUnit::Alu, "z", 10, 1.5, 1.0}}),
                 RequireError);
    EXPECT_THROW(TestSuite({{FunctionalUnit::Alu, "z", 10, 0.5, 0.0}}),
                 RequireError);
}

TEST(TestSuite, UnitNames) {
    EXPECT_STREQ(to_string(FunctionalUnit::Alu), "ALU");
    EXPECT_STREQ(to_string(FunctionalUnit::RegisterFile), "RegFile");
}

class FaultInjectorTest : public ::testing::Test {
protected:
    FaultInjectorTest() : chip_(4, 4, TechNode::nm16) {}

    Chip chip_;
};

TEST_F(FaultInjectorTest, NoFaultsAtZeroRate) {
    FaultModelParams p;
    p.base_rate_per_core_s = 0.0;
    FaultInjector inj(16, p, 1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(inj.step(0, 1.0, chip_, {}).empty());
    }
    EXPECT_EQ(inj.injected_count(), 0u);
}

TEST_F(FaultInjectorTest, FaultsArriveAtExpectedRate) {
    FaultModelParams p;
    p.base_rate_per_core_s = 0.01;
    FaultInjector inj(16, p, 2);
    // 16 cores x 1000 steps x 10ms = 160 core-seconds -> ~1.6 expected...
    // use a bigger horizon: 16 x 10000 x 0.01s = 1600 core-s -> ~16 faults,
    // but the one-latent-per-core cap truncates; just check a sane band.
    int steps_with_faults = 0;
    for (int i = 0; i < 10000; ++i) {
        if (!inj.step(static_cast<SimTime>(i), 0.01, chip_, {}).empty()) {
            ++steps_with_faults;
        }
    }
    EXPECT_GT(inj.injected_count(), 4u);
    EXPECT_LE(inj.injected_count(), 16u);  // capped by one per core
    EXPECT_EQ(static_cast<std::size_t>(steps_with_faults),
              inj.injected_count());
}

TEST_F(FaultInjectorTest, OneLatentFaultPerCore) {
    FaultModelParams p;
    p.base_rate_per_core_s = 100.0;  // certain injection
    FaultInjector inj(16, p, 3);
    inj.step(0, 1.0, chip_, {});
    EXPECT_EQ(inj.injected_count(), 16u);
    inj.step(1, 1.0, chip_, {});
    EXPECT_EQ(inj.injected_count(), 16u);  // no double faults
    for (CoreId id = 0; id < 16; ++id) {
        EXPECT_TRUE(inj.has_latent_fault(id));
    }
}

TEST_F(FaultInjectorTest, DarkAndFaultyCoresImmune) {
    FaultModelParams p;
    p.base_rate_per_core_s = 100.0;
    FaultInjector inj(16, p, 4);
    chip_.core(0).power_gate(0);
    chip_.core(1).mark_faulty(0);
    inj.step(0, 1.0, chip_, {});
    EXPECT_FALSE(inj.has_latent_fault(0));
    EXPECT_FALSE(inj.has_latent_fault(1));
    EXPECT_TRUE(inj.has_latent_fault(2));
}

TEST_F(FaultInjectorTest, AccelerationScalesRate) {
    FaultModelParams p;
    p.base_rate_per_core_s = 0.001;
    FaultInjector slow(16, p, 5), fast(16, p, 5);
    std::vector<double> accel(16, 50.0);
    std::uint64_t slow_count = 0, fast_count = 0;
    for (int i = 0; i < 2000; ++i) {
        slow.step(static_cast<SimTime>(i), 0.01, chip_, {});
        fast.step(static_cast<SimTime>(i), 0.01, chip_, accel);
    }
    slow_count = slow.injected_count();
    fast_count = fast.injected_count();
    EXPECT_GT(fast_count, slow_count);
}

TEST_F(FaultInjectorTest, DetectionProbabilityMatchesCoverage) {
    // A suite covering only the ALU at 100%: ALU faults always detected,
    // others never.
    TestSuite suite({{FunctionalUnit::Alu, "a", 100, 1.0, 1.0}});
    FaultModelParams p;
    p.base_rate_per_core_s = 100.0;
    int detected = 0, total = 0;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
        FaultInjector inj(1, p, seed);
        Chip solo(1, 1, TechNode::nm16);
        inj.step(0, 1.0, solo, {});
        if (!inj.has_latent_fault(0)) {
            continue;
        }
        const bool is_alu = inj.latent_fault(0)->unit == FunctionalUnit::Alu;
        const auto result = inj.attempt_detection(0, 10, suite);
        EXPECT_EQ(result.has_value(), is_alu);
        detected += result.has_value() ? 1 : 0;
        ++total;
    }
    // ~1/6 of faults are ALU faults.
    EXPECT_NEAR(static_cast<double>(detected) / total, 1.0 / 6.0, 0.08);
}

TEST_F(FaultInjectorTest, DetectionRecordsLatencyAndClearsFault) {
    TestSuite suite = TestSuite::standard();
    FaultModelParams p;
    p.base_rate_per_core_s = 100.0;
    FaultInjector inj(16, p, 7);
    inj.step(100, 1.0, chip_, {});
    ASSERT_TRUE(inj.has_latent_fault(0));
    // Retry until the coverage roll succeeds (coverage ~0.9+).
    std::optional<Fault> det;
    for (int i = 0; i < 20 && !det; ++i) {
        det = inj.attempt_detection(0, 200, suite);
    }
    ASSERT_TRUE(det.has_value());
    EXPECT_TRUE(det->detected);
    EXPECT_EQ(det->injected, 100u);
    EXPECT_EQ(det->detected_at, 200u);
    EXPECT_FALSE(inj.has_latent_fault(0));
    EXPECT_EQ(inj.detected_count(), 1u);
    EXPECT_FALSE(inj.attempt_detection(0, 300, suite).has_value());
}

TEST_F(FaultInjectorTest, EscapesAreCounted) {
    TestSuite none({{FunctionalUnit::Alu, "noop", 100, 0.0, 1.0}});
    FaultModelParams p;
    p.base_rate_per_core_s = 100.0;
    FaultInjector inj(16, p, 8);
    inj.step(0, 1.0, chip_, {});
    ASSERT_TRUE(inj.has_latent_fault(3));
    EXPECT_FALSE(inj.attempt_detection(3, 10, none).has_value());
    EXPECT_EQ(inj.escaped_tests(), 1u);
    EXPECT_TRUE(inj.has_latent_fault(3));  // fault persists
}

TEST_F(FaultInjectorTest, CorruptionOnlyOnFaultyCores) {
    FaultModelParams p;
    p.base_rate_per_core_s = 100.0;
    p.task_corruption_prob = 1.0;
    FaultInjector inj(16, p, 9);
    EXPECT_FALSE(inj.roll_task_corruption(0));  // no fault yet
    inj.step(0, 1.0, chip_, {});
    EXPECT_TRUE(inj.roll_task_corruption(0));
    EXPECT_EQ(inj.corrupted_tasks(), 1u);
}

TEST_F(FaultInjectorTest, Validation) {
    FaultModelParams p;
    p.base_rate_per_core_s = -1.0;
    EXPECT_THROW(FaultInjector(4, p, 1), RequireError);
    p = FaultModelParams{};
    p.task_corruption_prob = 1.5;
    EXPECT_THROW(FaultInjector(4, p, 1), RequireError);
    EXPECT_THROW(FaultInjector(0, FaultModelParams{}, 1), RequireError);
    FaultInjector ok(4, FaultModelParams{}, 1);
    EXPECT_THROW(ok.has_latent_fault(4), RequireError);
    // Chip size mismatch.
    EXPECT_THROW(ok.step(0, 1.0, chip_, {}), RequireError);
}

}  // namespace
}  // namespace mcs
