#include "power/power_budget.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

TEST(PowerBudget, SlackTracksLastSample) {
    PowerBudget b(30.0);
    EXPECT_DOUBLE_EQ(b.tdp_w(), 30.0);
    EXPECT_DOUBLE_EQ(b.slack_w(), 30.0);  // nothing recorded yet
    b.record(0, 12.0);
    EXPECT_DOUBLE_EQ(b.slack_w(), 18.0);
    EXPECT_DOUBLE_EQ(b.last_power_w(), 12.0);
    b.record(1, 35.0);
    EXPECT_DOUBLE_EQ(b.slack_w(), 0.0);  // clamped, never negative
}

TEST(PowerBudget, CountsViolations) {
    PowerBudget b(30.0);
    b.record(0, 29.0);
    b.record(1, 30.0);  // at the cap: not a violation
    b.record(2, 31.0);
    b.record(3, 40.0);
    EXPECT_EQ(b.samples(), 4u);
    EXPECT_EQ(b.violations(), 2u);
    EXPECT_DOUBLE_EQ(b.violation_rate(), 0.5);
    EXPECT_DOUBLE_EQ(b.worst_overshoot_w(), 10.0);
}

TEST(PowerBudget, MarginSuppressesSmallOvershoots) {
    PowerBudget b(30.0, 1.0);
    b.record(0, 30.5);  // within margin
    b.record(1, 31.5);  // outside margin
    EXPECT_EQ(b.violations(), 1u);
}

TEST(PowerBudget, StatsAggregate) {
    PowerBudget b(100.0);
    b.record(0, 10.0);
    b.record(1, 20.0);
    b.record(2, 30.0);
    EXPECT_DOUBLE_EQ(b.power_stats().mean(), 20.0);
    EXPECT_DOUBLE_EQ(b.power_stats().max(), 30.0);
    EXPECT_DOUBLE_EQ(b.power_stats().min(), 10.0);
}

TEST(PowerBudget, EmptyViolationRateIsZero) {
    PowerBudget b(10.0);
    EXPECT_DOUBLE_EQ(b.violation_rate(), 0.0);
}

TEST(PowerBudget, RejectsBadConstruction) {
    EXPECT_THROW(PowerBudget(0.0), RequireError);
    EXPECT_THROW(PowerBudget(-5.0), RequireError);
    EXPECT_THROW(PowerBudget(10.0, -1.0), RequireError);
}

}  // namespace
}  // namespace mcs
