#include "util/rng.hpp"

#include <array>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

// Golden values pin the generator's exact output: snapshots persist raw
// engine words and campaign replicas derive their seeds from these
// streams, so any change here silently invalidates existing snapshots and
// reshuffles every experiment. Update only with a schema bump.
TEST(RngState, StreamSeedIsStable) {
    EXPECT_EQ(Rng::stream_seed(42, 0), 0x47526757130f9f52ULL);
    EXPECT_EQ(Rng::stream_seed(42, 1), 0x6545d3b48b05c974ULL);
    EXPECT_EQ(Rng::stream_seed(42, 2), 0xd898a231b906c08fULL);
    EXPECT_EQ(Rng::stream_seed(42, 7), 0x38a8712a49ca13b5ULL);
    EXPECT_EQ(Rng::stream_seed(1337, 5), 0xcb161db245d23747ULL);
}

TEST(RngState, SeededOutputIsStable) {
    Rng rng(42);
    EXPECT_EQ(rng.next_u64(), 0x15780b2e0c2ec716ULL);
    EXPECT_EQ(rng.next_u64(), 0x6104d9866d113a7eULL);
    EXPECT_EQ(rng.next_u64(), 0xae17533239e499a1ULL);
}

TEST(RngState, StreamSeedIsCallOrderFree) {
    // The whole point of stream_seed over split(): the result is a pure
    // function of (root, stream).
    const std::uint64_t a = Rng::stream_seed(42, 3);
    Rng::stream_seed(42, 0);
    Rng::stream_seed(42, 9);
    EXPECT_EQ(Rng::stream_seed(42, 3), a);
    EXPECT_NE(Rng::stream_seed(42, 3), Rng::stream_seed(42, 4));
    EXPECT_NE(Rng::stream_seed(42, 3), Rng::stream_seed(43, 3));
}

TEST(RngState, SaveRestoreRoundTripIsExact) {
    Rng rng(7);
    // Burn a mixed prefix so the saved state is mid-stream, not the seed.
    for (int i = 0; i < 100; ++i) {
        rng.next_u64();
        rng.uniform();
        rng.normal();
    }
    const std::array<std::uint64_t, 4> state = rng.state();

    std::vector<std::uint64_t> raw;
    std::vector<double> real;
    for (int i = 0; i < 64; ++i) {
        raw.push_back(rng.next_u64());
        real.push_back(rng.uniform());
        real.push_back(rng.exponential(2.5));
        real.push_back(rng.normal(1.0, 0.5));
    }

    Rng replayed(999);  // different seed: state() must fully override it
    replayed.set_state(state);
    EXPECT_EQ(replayed.state(), state);
    for (int i = 0, j = 0; i < 64; ++i) {
        EXPECT_EQ(replayed.next_u64(), raw[static_cast<std::size_t>(i)]);
        // Bitwise equality, not tolerance: restored draws are the same
        // arithmetic on the same words.
        const auto idx = [&] { return static_cast<std::size_t>(j++); };
        EXPECT_EQ(replayed.uniform(), real[idx()]);
        EXPECT_EQ(replayed.exponential(2.5), real[idx()]);
        EXPECT_EQ(replayed.normal(1.0, 0.5), real[idx()]);
    }
}

TEST(RngState, RestoredSplitStreamsMatch) {
    Rng rng(21);
    rng.next_u64();
    const std::array<std::uint64_t, 4> state = rng.state();
    Rng a = rng.split();

    Rng replayed(0);
    replayed.set_state(state);
    Rng b = replayed.split();
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(RngState, AllZeroStateRejected) {
    Rng rng;
    EXPECT_THROW(rng.set_state({0, 0, 0, 0}), RequireError);
    // A partial-zero state is legal (xoshiro only forbids all-zero).
    EXPECT_NO_THROW(rng.set_state({0, 0, 0, 1}));
}

TEST(RngState, SeedingNeverProducesZeroState) {
    // splitmix64 seeding must not land in the absorbing all-zero state,
    // whatever the seed.
    for (std::uint64_t seed : {0ULL, 1ULL, 0xffffffffffffffffULL,
                               0x9e3779b97f4a7c15ULL}) {
        Rng rng(seed);
        const std::array<std::uint64_t, 4> s = rng.state();
        EXPECT_TRUE(s[0] != 0 || s[1] != 0 || s[2] != 0 || s[3] != 0);
    }
}

}  // namespace
}  // namespace mcs
