#include "arch/core.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

CoreLanes make_lanes(std::size_t n) {
    CoreLanes lanes;
    lanes.reset(n);
    return lanes;
}

class CoreTest : public ::testing::Test {
protected:
    CoreTest() : table_(build_vf_table(technology(TechNode::nm16))),
                 lanes_(make_lanes(8)),
                 core_(7, 3, 1, &table_, &lanes_) {}

    std::vector<VfLevel> table_;
    CoreLanes lanes_;
    Core core_;
};

TEST_F(CoreTest, BootsIdleAtMaxLevel) {
    EXPECT_EQ(core_.state(), CoreState::Idle);
    EXPECT_EQ(core_.vf_level(), static_cast<int>(table_.size()) - 1);
    EXPECT_DOUBLE_EQ(core_.freq_hz(), table_.back().freq_hz);
    EXPECT_DOUBLE_EQ(core_.voltage_v(), table_.back().voltage_v);
    EXPECT_EQ(core_.id(), 7u);
    EXPECT_EQ(core_.x(), 3);
    EXPECT_EQ(core_.y(), 1);
    EXPECT_FALSE(core_.reserved());
}

TEST_F(CoreTest, TaskLifecycleCounts) {
    core_.start_task(100);
    EXPECT_TRUE(core_.is_busy());
    core_.finish_task(100 + kMillisecond);
    EXPECT_TRUE(core_.is_idle());
    EXPECT_EQ(core_.tasks_executed(), 1u);
    // 1 ms at 2.5 GHz = 2.5M cycles.
    EXPECT_EQ(core_.busy_cycles_since_test(), 2'500'000u);
    EXPECT_EQ(core_.total_busy_cycles(), 2'500'000u);
    EXPECT_EQ(core_.total_busy_time(), kMillisecond);
}

TEST_F(CoreTest, BusyCyclesExactAcrossVfChange) {
    core_.start_task(0);
    // 1 ms at top level f (2.5 GHz).
    core_.set_vf_level(kMillisecond, 0);
    // 1 ms at bottom level f (0.2 GHz).
    core_.finish_task(2 * kMillisecond);
    const auto expected = cycles_in(kMillisecond, table_.back().freq_hz) +
                          cycles_in(kMillisecond, table_.front().freq_hz);
    EXPECT_EQ(core_.total_busy_cycles(), expected);
}

TEST_F(CoreTest, TestLifecycleResetsStress) {
    core_.start_task(0);
    core_.finish_task(kMillisecond);
    EXPECT_GT(core_.busy_cycles_since_test(), 0u);
    core_.start_test(2 * kMillisecond);
    EXPECT_TRUE(core_.is_testing());
    core_.finish_test(3 * kMillisecond, true);
    EXPECT_EQ(core_.busy_cycles_since_test(), 0u);
    EXPECT_EQ(core_.tests_completed(), 1u);
    EXPECT_EQ(core_.last_test_end(), 3 * kMillisecond);
    EXPECT_EQ(core_.total_test_time(), kMillisecond);
    // Total busy cycles survive the reset.
    EXPECT_GT(core_.total_busy_cycles(), 0u);
}

TEST_F(CoreTest, AbortedTestDoesNotResetStress) {
    core_.start_task(0);
    core_.finish_task(kMillisecond);
    const auto stress = core_.busy_cycles_since_test();
    core_.start_test(2 * kMillisecond);
    core_.finish_test(3 * kMillisecond, false);
    EXPECT_EQ(core_.busy_cycles_since_test(), stress);
    EXPECT_EQ(core_.tests_completed(), 0u);
    EXPECT_EQ(core_.tests_aborted(), 1u);
    EXPECT_EQ(core_.last_test_end(), 0u);
}

TEST_F(CoreTest, IllegalTransitionsThrow) {
    EXPECT_THROW(core_.finish_task(0), RequireError);
    EXPECT_THROW(core_.finish_test(0, true), RequireError);
    EXPECT_THROW(core_.wake(0), RequireError);
    core_.start_task(0);
    EXPECT_THROW(core_.start_task(1), RequireError);
    EXPECT_THROW(core_.start_test(1), RequireError);
    EXPECT_THROW(core_.power_gate(1), RequireError);
}

TEST_F(CoreTest, DarkLifecycle) {
    core_.power_gate(10);
    EXPECT_EQ(core_.state(), CoreState::Dark);
    EXPECT_FALSE(core_.is_available());
    EXPECT_THROW(core_.start_task(20), RequireError);
    core_.wake(30);
    EXPECT_TRUE(core_.is_idle());
    EXPECT_EQ(core_.last_state_change(), 30u);
}

TEST_F(CoreTest, ReservedCoreCannotBeGated) {
    core_.set_reserved(true);
    EXPECT_THROW(core_.power_gate(0), RequireError);
}

TEST_F(CoreTest, FaultyIsTerminalAndClearsReservation) {
    core_.set_reserved(true);
    core_.mark_faulty(5);
    EXPECT_EQ(core_.state(), CoreState::Faulty);
    EXPECT_FALSE(core_.reserved());
    EXPECT_FALSE(core_.is_available());
    EXPECT_THROW(core_.mark_faulty(6), RequireError);
    EXPECT_THROW(core_.start_task(6), RequireError);
}

TEST_F(CoreTest, BusyFraction) {
    core_.start_task(0);
    core_.finish_task(250);
    EXPECT_DOUBLE_EQ(core_.busy_fraction(1000), 0.25);
    // In-flight busy interval is included.
    core_.start_task(1000);
    EXPECT_DOUBLE_EQ(core_.busy_fraction(2000), (250.0 + 1000.0) / 2000.0);
}

TEST_F(CoreTest, BusyFractionAtBirthIsZero) {
    EXPECT_DOUBLE_EQ(core_.busy_fraction(0), 0.0);
}

TEST_F(CoreTest, CheckpointRejectsTimeTravel) {
    core_.checkpoint(100);
    EXPECT_THROW(core_.checkpoint(50), RequireError);
}

TEST_F(CoreTest, VfLevelRangeChecked) {
    EXPECT_THROW(core_.set_vf_level(0, -1), RequireError);
    EXPECT_THROW(core_.set_vf_level(0, static_cast<int>(table_.size())),
                 RequireError);
}

TEST_F(CoreTest, StateNames) {
    EXPECT_STREQ(to_string(CoreState::Idle), "Idle");
    EXPECT_STREQ(to_string(CoreState::Busy), "Busy");
    EXPECT_STREQ(to_string(CoreState::Testing), "Testing");
    EXPECT_STREQ(to_string(CoreState::Dark), "Dark");
    EXPECT_STREQ(to_string(CoreState::Faulty), "Faulty");
}

TEST(CoreCtor, RejectsMissingTable) {
    CoreLanes lanes = make_lanes(1);
    EXPECT_THROW(Core(0, 0, 0, nullptr, &lanes), RequireError);
    std::vector<VfLevel> empty;
    EXPECT_THROW(Core(0, 0, 0, &empty, &lanes), RequireError);
}

TEST(CoreCtor, RejectsMissingLanesSlot) {
    std::vector<VfLevel> table = build_vf_table(technology(TechNode::nm16));
    EXPECT_THROW(Core(0, 0, 0, &table, nullptr), RequireError);
    CoreLanes lanes = make_lanes(2);
    EXPECT_THROW(Core(2, 0, 0, &table, &lanes), RequireError);
}

}  // namespace
}  // namespace mcs
