#include "sbst/fault_model.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

FaultModelParams only(FaultKind kind) {
    FaultModelParams p;
    p.base_rate_per_core_s = 100.0;  // certain injection
    p.stuck_at_weight = kind == FaultKind::StuckAt ? 1.0 : 0.0;
    p.delay_weight = kind == FaultKind::Delay ? 1.0 : 0.0;
    p.low_voltage_weight = kind == FaultKind::LowVoltage ? 1.0 : 0.0;
    return p;
}

TestSuite perfect_suite() {
    std::vector<TestRoutine> routines;
    for (std::size_t u = 0; u < kFunctionalUnitCount; ++u) {
        routines.push_back({static_cast<FunctionalUnit>(u), "r", 100, 1.0,
                            1.0});
    }
    return TestSuite(std::move(routines));
}

TEST(FaultKinds, Names) {
    EXPECT_STREQ(to_string(FaultKind::StuckAt), "stuck-at");
    EXPECT_STREQ(to_string(FaultKind::Delay), "delay");
    EXPECT_STREQ(to_string(FaultKind::LowVoltage), "low-voltage");
}

TEST(FaultKinds, WeightsSelectKind) {
    Chip chip(2, 2, TechNode::nm16);
    for (FaultKind kind : {FaultKind::StuckAt, FaultKind::Delay,
                           FaultKind::LowVoltage}) {
        FaultInjector inj(4, only(kind), 1);
        inj.step(0, 1.0, chip, {});
        for (CoreId id = 0; id < 4; ++id) {
            ASSERT_TRUE(inj.has_latent_fault(id));
            EXPECT_EQ(inj.latent_fault(id)->kind, kind);
        }
    }
}

TEST(FaultKinds, MixProducesAllKinds) {
    Chip chip(8, 8, TechNode::nm16);
    FaultModelParams p;
    p.base_rate_per_core_s = 100.0;
    FaultInjector inj(64, p, 3);
    inj.step(0, 1.0, chip, {});
    int counts[3] = {0, 0, 0};
    for (CoreId id = 0; id < 64; ++id) {
        counts[static_cast<int>(inj.latent_fault(id)->kind)]++;
    }
    EXPECT_GT(counts[0], 0);  // stuck-at
    EXPECT_GT(counts[1], 0);  // delay
    EXPECT_GT(counts[2], 0);  // low-voltage
}

TEST(FaultKinds, StuckAtManifestsEverywhere) {
    FaultInjector inj(1, only(FaultKind::StuckAt), 1);
    for (int level = 0; level < 5; ++level) {
        EXPECT_TRUE(inj.manifests_at(FaultKind::StuckAt, level, 5));
    }
}

TEST(FaultKinds, DelayManifestsOnlyNearTop) {
    FaultModelParams p = only(FaultKind::Delay);
    p.delay_visible_levels = 2;
    FaultInjector inj(1, p, 1);
    EXPECT_FALSE(inj.manifests_at(FaultKind::Delay, 0, 5));
    EXPECT_FALSE(inj.manifests_at(FaultKind::Delay, 2, 5));
    EXPECT_TRUE(inj.manifests_at(FaultKind::Delay, 3, 5));
    EXPECT_TRUE(inj.manifests_at(FaultKind::Delay, 4, 5));
}

TEST(FaultKinds, LowVoltageManifestsOnlyNearBottom) {
    FaultModelParams p = only(FaultKind::LowVoltage);
    p.lowv_visible_levels = 2;
    FaultInjector inj(1, p, 1);
    EXPECT_TRUE(inj.manifests_at(FaultKind::LowVoltage, 0, 5));
    EXPECT_TRUE(inj.manifests_at(FaultKind::LowVoltage, 1, 5));
    EXPECT_FALSE(inj.manifests_at(FaultKind::LowVoltage, 2, 5));
    EXPECT_FALSE(inj.manifests_at(FaultKind::LowVoltage, 4, 5));
}

TEST(FaultKinds, DetectionRequiresManifestingLevel) {
    Chip chip(1, 1, TechNode::nm16);
    FaultInjector inj(1, only(FaultKind::Delay), 5);
    inj.step(0, 1.0, chip, {});
    ASSERT_TRUE(inj.has_latent_fault(0));
    const TestSuite suite = perfect_suite();
    // Sessions at low levels cannot see a delay fault -- and they do not
    // count as routine escapes either.
    for (int level = 0; level < 3; ++level) {
        EXPECT_FALSE(inj.attempt_detection(0, 10, suite, level, 5));
    }
    EXPECT_EQ(inj.escaped_tests(), 0u);
    // A top-level session sees it with certainty (perfect coverage).
    auto det = inj.attempt_detection(0, 20, suite, 4, 5);
    ASSERT_TRUE(det.has_value());
    EXPECT_EQ(det->kind, FaultKind::Delay);
}

TEST(FaultKinds, LowVoltageCaughtOnlyByLowSessions) {
    Chip chip(1, 1, TechNode::nm16);
    FaultInjector inj(1, only(FaultKind::LowVoltage), 5);
    inj.step(0, 1.0, chip, {});
    const TestSuite suite = perfect_suite();
    EXPECT_FALSE(inj.attempt_detection(0, 10, suite, 4, 5));
    EXPECT_TRUE(inj.attempt_detection(0, 20, suite, 0, 5).has_value());
}

TEST(FaultKinds, SingleLevelOverloadSeesEverything) {
    // The 1-level convenience overload treats the session as both top and
    // bottom, so every class manifests.
    Chip chip(1, 1, TechNode::nm16);
    for (FaultKind kind : {FaultKind::StuckAt, FaultKind::Delay,
                           FaultKind::LowVoltage}) {
        FaultInjector inj(1, only(kind), 7);
        inj.step(0, 1.0, chip, {});
        EXPECT_TRUE(
            inj.attempt_detection(0, 10, perfect_suite()).has_value())
            << to_string(kind);
    }
}

TEST(FaultKinds, Validation) {
    FaultModelParams p;
    p.stuck_at_weight = p.delay_weight = p.low_voltage_weight = 0.0;
    EXPECT_THROW(FaultInjector(1, p, 1), RequireError);
    p = FaultModelParams{};
    p.delay_visible_levels = 0;
    EXPECT_THROW(FaultInjector(1, p, 1), RequireError);
    p = FaultModelParams{};
    p.stuck_at_weight = -1.0;
    EXPECT_THROW(FaultInjector(1, p, 1), RequireError);
    FaultInjector ok(1, FaultModelParams{}, 1);
    EXPECT_THROW(ok.manifests_at(FaultKind::StuckAt, 5, 5), RequireError);
}

}  // namespace
}  // namespace mcs
