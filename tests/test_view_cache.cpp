#include "mapping/view_cache.hpp"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mcs {
namespace {

/// Model chip: the ground truth the cache's rebuild functor scans. Commits
/// only flip the committed cores' allocatable/testing flags -- exactly the
/// inputs the cache header documents as the only view inputs a mapping
/// commit can change within one simulation event.
struct ModelChip {
    std::vector<std::uint8_t> allocatable;
    std::vector<std::uint8_t> testing;
    std::vector<double> utilization;

    explicit ModelChip(std::size_t n, Rng& rng)
        : allocatable(n), testing(n), utilization(n) {
        randomize(rng);
    }

    void randomize(Rng& rng) {
        for (std::size_t i = 0; i < allocatable.size(); ++i) {
            allocatable[i] = rng.bernoulli(0.7) ? 1 : 0;
            testing[i] = (allocatable[i] != 0 && rng.bernoulli(0.2)) ? 1 : 0;
            utilization[i] = rng.uniform();
        }
    }

    void commit(std::span<const CoreId> cores) {
        for (CoreId id : cores) {
            allocatable[id] = 0;
            testing[id] = 0;
        }
    }

    PlatformViewCache::Rebuild scanner() const {
        return [this](PlatformViewCache& cache) {
            ++scans;
            cache.allocatable_buf() = allocatable;
            cache.testing_buf() = testing;
            cache.utilization_buf() = utilization;
        };
    }

    mutable int scans = 0;
};

std::vector<std::uint8_t> to_vec(std::span<const std::uint8_t> s) {
    return {s.begin(), s.end()};
}
std::vector<double> to_vec(std::span<const double> s) {
    return {s.begin(), s.end()};
}

void expect_view_matches(const PlatformView& view, const ModelChip& chip) {
    EXPECT_EQ(to_vec(view.allocatable), chip.allocatable);
    EXPECT_EQ(to_vec(view.testing), chip.testing);
    EXPECT_EQ(to_vec(view.utilization), chip.utilization);
}

TEST(ViewCache, PatchedViewEqualsFreshScan) {
    // Property test: after any randomized sequence of mapping commits, the
    // patched cached view must equal a fresh chip scan -- using one scan
    // per round, not one per commit.
    Rng rng(2024);
    for (int trial = 0; trial < 50; ++trial) {
        const int side = static_cast<int>(rng.uniform_int(2, 8));
        const auto n = static_cast<std::size_t>(side) *
                       static_cast<std::size_t>(side);
        ModelChip chip(n, rng);
        PlatformViewCache cache;
        cache.reset(side, side, n);

        const int rounds = static_cast<int>(rng.uniform_int(1, 5));
        for (int round = 0; round < rounds; ++round) {
            // Round start: state moved between simulation events.
            chip.randomize(rng);
            cache.invalidate();
            const int scans_before = chip.scans;
            (void)cache.get(chip.scanner());
            EXPECT_EQ(chip.scans, scans_before + 1);

            const int commits = static_cast<int>(rng.uniform_int(0, 6));
            for (int c = 0; c < commits; ++c) {
                // Random subset of still-allocatable cores (mimics a
                // mapper claiming a region), possibly empty.
                std::vector<CoreId> claimed;
                for (std::size_t i = 0; i < n; ++i) {
                    if (chip.allocatable[i] != 0 && rng.bernoulli(0.25)) {
                        claimed.push_back(static_cast<CoreId>(i));
                    }
                }
                chip.commit(claimed);
                cache.on_commit(claimed);

                // The patched view equals a fresh scan, with no new scan.
                const int scans_mid = chip.scans;
                expect_view_matches(cache.get(chip.scanner()), chip);
                EXPECT_EQ(chip.scans, scans_mid);
            }
        }
    }
}

TEST(ViewCache, ScanCountTracksRoundsNotQueries) {
    Rng rng(7);
    ModelChip chip(16, rng);
    PlatformViewCache cache;
    cache.reset(4, 4, 16);
    EXPECT_FALSE(cache.valid());
    EXPECT_EQ(cache.chip_scans(), 0u);

    cache.invalidate();
    for (int q = 0; q < 5; ++q) {
        (void)cache.get(chip.scanner());
    }
    EXPECT_EQ(cache.chip_scans(), 1u);
    EXPECT_EQ(chip.scans, 1);
    EXPECT_TRUE(cache.valid());

    cache.invalidate();
    (void)cache.get(chip.scanner());
    EXPECT_EQ(cache.chip_scans(), 2u);
}

TEST(ViewCache, CommitOnInvalidCacheIsIgnored) {
    Rng rng(9);
    ModelChip chip(4, rng);
    chip.allocatable = {1, 1, 1, 1};
    chip.testing = {0, 0, 0, 0};
    PlatformViewCache cache;
    cache.reset(2, 2, 4);

    // No scan yet: the commit must not touch (empty) buffers.
    const std::vector<CoreId> claimed{0, 3};
    cache.on_commit(claimed);
    EXPECT_FALSE(cache.valid());

    // After the next scan the view reflects the model, not stale patches.
    chip.commit(claimed);
    expect_view_matches(cache.get(chip.scanner()), chip);
}

}  // namespace
}  // namespace mcs
