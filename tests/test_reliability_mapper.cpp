#include "mapping/reliability_mapper.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace mcs {
namespace {

/// Owns the buffers behind a PlatformView (with the thermal / testing
/// layers the reliability score reads).
struct ViewFixture {
    int width;
    int height;
    std::vector<std::uint8_t> alloc;
    std::vector<double> util;
    std::vector<double> crit;
    std::vector<std::uint8_t> testing;
    std::vector<double> temp;

    ViewFixture(int w, int h)
        : width(w),
          height(h),
          alloc(static_cast<std::size_t>(w * h), 1),
          util(static_cast<std::size_t>(w * h), 0.0),
          crit(static_cast<std::size_t>(w * h), 0.0),
          testing(static_cast<std::size_t>(w * h), 0),
          temp(static_cast<std::size_t>(w * h), 45.0) {}

    PlatformView view(bool with_temp = true, bool with_testing = true) const {
        PlatformView v;
        v.width = width;
        v.height = height;
        v.allocatable = alloc;
        v.utilization = util;
        v.criticality = crit;
        if (with_testing) {
            v.testing = testing;
        }
        if (with_temp) {
            v.temperature_c = temp;
        }
        return v;
    }
};

/// Brute-force reference: independently scores every allocatable core with
/// the documented formula and sorts (weight, id) ascending.
std::vector<CoreId> reference_order(const ViewFixture& f,
                                    const ReliabilityWeights& w,
                                    bool with_temp = true,
                                    bool with_testing = true) {
    std::vector<std::pair<double, CoreId>> scored;
    for (CoreId id = 0; id < f.alloc.size(); ++id) {
        if (!f.alloc[id]) {
            continue;
        }
        double weight = w.w_utilization * f.util[id] +
                        w.w_criticality * f.crit[id];
        if (with_temp) {
            const double t = (f.temp[id] - w.temp_ref_c) / w.temp_scale_c;
            weight += w.w_temperature * std::clamp(t, 0.0, 1.0);
        }
        if (with_testing && f.testing[id]) {
            weight += w.w_testing;
        }
        scored.push_back({weight, id});
    }
    std::sort(scored.begin(), scored.end());
    std::vector<CoreId> order;
    for (const auto& [weight, id] : scored) {
        order.push_back(id);
    }
    return order;
}

TEST(ReliabilityMapper, PrefersLowestWearRiskCores) {
    ViewFixture f(4, 4);
    f.util[0] = 0.9;   // heavily worn
    f.crit[5] = 1.0;   // test-critical
    f.temp[10] = 95.0; // hot spot
    f.testing[3] = 1;  // would abort a test
    ReliabilityWeightedMapper mapper;
    Rng rng(1);
    const auto r = mapper.map({1, 4}, f.view(), rng);
    ASSERT_TRUE(r.has_value());
    const std::vector<CoreId> ref = reference_order(f, mapper.weights());
    EXPECT_EQ(r->cores,
              std::vector<CoreId>(ref.begin(), ref.begin() + 4));
    EXPECT_EQ(r->first_node, r->cores.front());
    // None of the four perturbed cores should be picked on an empty mesh.
    for (const CoreId id : {0u, 5u, 10u, 3u}) {
        EXPECT_EQ(std::count(r->cores.begin(), r->cores.end(), id), 0);
    }
}

TEST(ReliabilityMapper, MatchesBruteForceOnRandomizedChips) {
    Rng rng(20260808);
    ReliabilityWeightedMapper mapper;
    for (int trial = 0; trial < 200; ++trial) {
        const int side = 3 + static_cast<int>(rng.index(6));  // 3x3 .. 8x8
        ViewFixture f(side, side);
        for (std::size_t i = 0; i < f.alloc.size(); ++i) {
            f.alloc[i] = rng.bernoulli(0.8) ? 1 : 0;
            f.util[i] = rng.uniform();
            f.crit[i] = rng.uniform();
            f.testing[i] = rng.bernoulli(0.2) ? 1 : 0;
            f.temp[i] = rng.uniform(30.0, 100.0);
        }
        const std::vector<CoreId> ref = reference_order(f, mapper.weights());
        const std::size_t want = 1 + rng.index(f.alloc.size());
        Rng map_rng(trial);
        const auto r = mapper.map({1, want}, f.view(), map_rng);
        if (want > ref.size()) {
            EXPECT_FALSE(r.has_value()) << "trial " << trial;
            continue;
        }
        ASSERT_TRUE(r.has_value()) << "trial " << trial;
        EXPECT_EQ(r->cores,
                  std::vector<CoreId>(ref.begin(), ref.begin() + want))
            << "trial " << trial
            << ": preference order diverged from brute force";
        EXPECT_EQ(r->first_node, r->cores.front());
    }
}

TEST(ReliabilityMapper, CoreWeightMatchesDocumentedFormula) {
    ViewFixture f(2, 2);
    f.util[1] = 0.5;
    f.crit[1] = 0.8;
    f.temp[1] = 65.0;
    f.testing[1] = 1;
    ReliabilityWeightedMapper mapper;
    const ReliabilityWeights& w = mapper.weights();
    // Hand-computed: 0.5*0.5 + 0.3*0.8 + 0.2*((65-45)/40) + 0.25.
    EXPECT_NEAR(mapper.core_weight(f.view(), 1),
                w.w_utilization * 0.5 + w.w_criticality * 0.8 +
                    w.w_temperature * 0.5 + w.w_testing,
                1e-12);
    // Temperature clamps: below the reference adds nothing, far above
    // saturates at w_temperature.
    f.temp[0] = 20.0;
    EXPECT_NEAR(mapper.core_weight(f.view(), 0), 0.0, 1e-12);
    f.temp[2] = 200.0;
    EXPECT_NEAR(mapper.core_weight(f.view(), 2), w.w_temperature, 1e-12);
}

TEST(ReliabilityMapper, HandlesMissingOptionalLayers) {
    ViewFixture f(4, 4);
    f.util[7] = 1.0;
    f.temp[2] = 150.0;   // would dominate if the layer were attached
    f.testing[3] = 1;
    ReliabilityWeightedMapper mapper;
    Rng rng(1);
    const auto r =
        mapper.map({1, 15}, f.view(/*with_temp=*/false,
                                   /*with_testing=*/false),
                   rng);
    ASSERT_TRUE(r.has_value());
    const std::vector<CoreId> ref =
        reference_order(f, mapper.weights(), false, false);
    EXPECT_EQ(r->cores,
              std::vector<CoreId>(ref.begin(), ref.begin() + 15));
    // Without the layers, only utilization differentiates: core 7 is the
    // single worst pick and must be the one left out.
    EXPECT_EQ(std::count(r->cores.begin(), r->cores.end(), CoreId{7}), 0);
}

TEST(ReliabilityMapper, BreaksTiesByCoreId) {
    ViewFixture f(4, 4);  // perfectly uniform view
    ReliabilityWeightedMapper mapper;
    Rng rng(123);
    const auto r = mapper.map({1, 5}, f.view(), rng);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->cores, (std::vector<CoreId>{0, 1, 2, 3, 4}));
}

TEST(ReliabilityMapper, ReturnsNulloptWhenInsufficient) {
    ViewFixture f(4, 4);
    for (std::size_t i = 0; i < 12; ++i) {
        f.alloc[i] = 0;
    }
    ReliabilityWeightedMapper mapper;
    Rng rng(1);
    EXPECT_FALSE(mapper.map({1, 5}, f.view(), rng).has_value());
    EXPECT_TRUE(mapper.map({1, 4}, f.view(), rng).has_value());
    EXPECT_THROW(mapper.map({1, 0}, f.view(), rng), RequireError);
}

}  // namespace
}  // namespace mcs
