#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "scenario/scenario_player.hpp"
#include "scenario/scenario_spec.hpp"
#include "support/differential.hpp"
#include "telemetry/json.hpp"
#include "util/require.hpp"

// The committed scenario corpus (examples/scenarios/) is a contract, not
// documentation: every file must be in canonical form (so diffs are
// meaningful and fingerprints stable) and must replay to the committed
// golden digests on the reference configuration. Regenerate goldens with
//     MCS_UPDATE_SCENARIO_GOLDENS=1 ./test_scenario_corpus
// after an intentional behavior change and commit the updated file.

namespace mcs {
namespace {

const char* const kCorpus[] = {
    "burst_at_budget_edge", "abort_cascade",     "budget_cut",
    "vf_throttle_step",     "wear_acceleration", "combined_stress",
};

std::string corpus_dir() {
    return std::string(MCS_SOURCE_DIR) + "/examples/scenarios/";
}

std::string goldens_path() { return corpus_dir() + "goldens.json"; }

std::uint64_t fnv1a64(const std::string& bytes) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : bytes) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::string digest(const std::string& bytes) {
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(fnv1a64(bytes)));
    return std::string(buf);
}

/// Reference replay platform: the paper's 8x8 chip under moderate load
/// with fault injection live (so inject-fault directives take effect).
SystemConfig golden_config() {
    SystemConfig cfg;
    cfg.seed = 20260808;
    cfg.enable_fault_injection = true;
    const double capacity = 64.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(0.4, cfg.workload.graphs, capacity);
    return cfg;
}

/// Corpus directives all fire by 1.5 s.
constexpr SimDuration kGoldenHorizon = 1600 * kMillisecond;

testsupport::RunArtifacts replay(const std::string& name) {
    ManycoreSystem sys(golden_config());
    telemetry::Tracer tracer(testsupport::kTraceCapacity);
    sys.set_tracer(&tracer);
    sys.attach_scenario(make_scenario_player(corpus_dir() + name + ".json"));
    return testsupport::capture(sys, tracer, kGoldenHorizon);
}

TEST(ScenarioCorpus, EveryFileIsCanonical) {
    for (const char* name : kCorpus) {
        const std::string path = corpus_dir() + name + ".json";
        const std::string bytes = testsupport::read_file(path);
        const ScenarioSpec spec = load_scenario_file(path);
        EXPECT_EQ(bytes, canonical_scenario_json(spec) + "\n")
            << path << " is not in canonical form";
        EXPECT_FALSE(spec.name.empty());
    }
}

TEST(ScenarioCorpus, CoversEveryDirectiveKind) {
    std::map<DirectiveKind, int> seen;
    for (const char* name : kCorpus) {
        for (const ScenarioDirective& d :
             load_scenario_file(corpus_dir() + name + ".json").directives) {
            ++seen[d.kind];
        }
    }
    for (const DirectiveKind kind :
         {DirectiveKind::ArrivalBurst, DirectiveKind::AbortTests,
          DirectiveKind::InvalidateProgress, DirectiveKind::InjectFault,
          DirectiveKind::InjectWear, DirectiveKind::SetBudget,
          DirectiveKind::SetVf}) {
        EXPECT_GT(seen[kind], 0)
            << "corpus does not exercise " << to_string(kind);
    }
}

TEST(ScenarioCorpus, FingerprintsAreUnique) {
    std::map<std::string, std::string> by_fp;
    for (const char* name : kCorpus) {
        const ScenarioSpec spec =
            load_scenario_file(corpus_dir() + name + ".json");
        const std::string fp = scenario_fingerprint(spec);
        EXPECT_TRUE(by_fp.emplace(fp, name).second)
            << name << " collides with " << by_fp[fp];
    }
}

TEST(ScenarioCorpus, ReplaysMatchGoldenDigests) {
    const bool update =
        std::getenv("MCS_UPDATE_SCENARIO_GOLDENS") != nullptr;

    std::map<std::string, std::pair<std::string, std::string>> got;
    for (const char* name : kCorpus) {
        const testsupport::RunArtifacts art = replay(name);
        got[name] = {digest(art.report), digest(art.trace)};
    }

    if (update) {
        std::ostringstream os;
        telemetry::JsonWriter w(os);
        w.begin_object();
        for (const auto& [name, d] : got) {
            w.key(name);
            w.begin_object();
            w.field("report", d.first);
            w.field("trace", d.second);
            w.end_object();
        }
        w.end_object();
        testsupport::write_file(goldens_path(), os.str() + "\n");
        GTEST_SKIP() << "goldens regenerated at " << goldens_path();
    }

    const telemetry::JsonValue goldens =
        telemetry::parse_json(testsupport::read_file(goldens_path()));
    ASSERT_EQ(goldens.object.size(), std::size(kCorpus))
        << "goldens.json does not cover the corpus exactly";
    for (const auto& [name, d] : got) {
        ASSERT_TRUE(goldens.has(name)) << "no golden for " << name;
        EXPECT_EQ(d.first, goldens.at(name).at("report").string)
            << name << ": run-report digest drifted";
        EXPECT_EQ(d.second, goldens.at(name).at("trace").string)
            << name << ": trace digest drifted";
    }
}

}  // namespace
}  // namespace mcs
