#include "power/power_manager.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

class PowerManagerTest : public ::testing::Test {
protected:
    PowerManagerTest()
        : chip_(4, 4, TechNode::nm16),
          model_(chip_.tech(), chip_.vf_table()),
          budget_(chip_.tdp_w()) {}

    PowerManager make(PowerManagerParams p = {}) {
        return PowerManager(chip_, model_, budget_, p);
    }

    void make_busy(std::size_t n, SimTime now = 0) {
        for (std::size_t i = 0; i < n; ++i) {
            chip_.core(static_cast<CoreId>(i)).start_task(now);
        }
    }

    Chip chip_;
    PowerModel model_;
    PowerBudget budget_;
};

TEST_F(PowerManagerTest, MeasuresChipPower) {
    auto mgr = make();
    mgr.control_epoch(0, {});
    EXPECT_NEAR(mgr.measured_power_w(), model_.chip_power_w(chip_, {}), 1e-9);
    EXPECT_EQ(budget_.samples(), 1u);
}

TEST_F(PowerManagerTest, ExtraPowerIncluded) {
    auto mgr = make();
    mgr.control_epoch(0, {}, 5.0);
    EXPECT_NEAR(mgr.measured_power_w(),
                model_.chip_power_w(chip_, {}) + 5.0, 1e-9);
}

TEST_F(PowerManagerTest, ThrottlesWhenOverBudget) {
    PowerManagerParams p;
    p.enable_power_gating = false;
    auto mgr = make(p);
    make_busy(16);  // 16 busy cores at top level >> TDP at 16nm
    for (int e = 0; e < 50; ++e) {
        mgr.control_epoch(static_cast<SimTime>(e + 1) * 100 * kMicrosecond,
                          {});
    }
    EXPECT_GT(mgr.throttle_steps(), 0u);
    // Power must have been brought to (or below) the setpoint.
    EXPECT_LE(mgr.measured_power_w(), mgr.setpoint_w() * 1.02);
    // At least some cores got pushed off the top level.
    int below_top = 0;
    for (const Core& c : chip_.cores()) {
        if (c.vf_level() < chip_.max_vf_level()) {
            ++below_top;
        }
    }
    EXPECT_GT(below_top, 0);
}

TEST_F(PowerManagerTest, BoostsWhenSlackAndNeverOvershoots) {
    PowerManagerParams p;
    p.enable_power_gating = false;
    auto mgr = make(p);
    make_busy(4);
    // Push the busy cores to the bottom level first.
    for (std::size_t i = 0; i < 4; ++i) {
        chip_.core(static_cast<CoreId>(i)).set_vf_level(0, 0);
    }
    for (int e = 0; e < 100; ++e) {
        mgr.control_epoch(static_cast<SimTime>(e + 1) * 100 * kMicrosecond,
                          {});
    }
    EXPECT_GT(mgr.boost_steps(), 0u);
    // 4 busy cores fit comfortably: they should reach the top level.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(chip_.core(static_cast<CoreId>(i)).vf_level(),
                  chip_.max_vf_level());
    }
    EXPECT_LE(mgr.measured_power_w(), budget_.tdp_w());
}

TEST_F(PowerManagerTest, VfListenerInvoked) {
    PowerManagerParams p;
    p.enable_power_gating = false;
    auto mgr = make(p);
    make_busy(16);
    int calls = 0;
    mgr.set_vf_change_listener([&](CoreId, int old_level, int new_level) {
        EXPECT_NE(old_level, new_level);
        ++calls;
    });
    for (int e = 0; e < 20; ++e) {
        mgr.control_epoch(static_cast<SimTime>(e + 1) * 100 * kMicrosecond,
                          {});
    }
    EXPECT_GT(calls, 0);
}

TEST_F(PowerManagerTest, GrantTaskLevelRespectsHeadroom) {
    auto mgr = make();
    mgr.control_epoch(0, {});  // establish the ledger from an idle chip
    // Plenty of headroom with everything idle: first grant is near the top.
    const int first = mgr.grant_task_level(0, 45.0);
    EXPECT_GE(first, chip_.max_vf_level() - 1);
    // Grants accumulate in the ledger; eventually only the bottom levels
    // fit. (Level 1 busy power is below idle-at-top power, so grants can
    // legitimately bottom out at 1 rather than 0.)
    int lowest = first;
    for (CoreId id = 1; id < 16; ++id) {
        lowest = std::min(lowest, mgr.grant_task_level(id, 45.0));
    }
    EXPECT_LE(lowest, 1);  // 16 busy cores cannot all fit at high levels
    EXPECT_GT(mgr.committed_power_w(), mgr.setpoint_w() * 0.9);
}

TEST_F(PowerManagerTest, LedgerResetsAtEpoch) {
    auto mgr = make();
    mgr.control_epoch(0, {});
    mgr.reserve_power(5.0);
    const double committed = mgr.committed_power_w();
    EXPECT_GT(committed, mgr.measured_power_w() + 4.9);
    mgr.control_epoch(100 * kMicrosecond, {});
    EXPECT_NEAR(mgr.committed_power_w(), mgr.measured_power_w(), 1e-9);
}

TEST_F(PowerManagerTest, HeadroomNeverNegative) {
    auto mgr = make();
    mgr.control_epoch(0, {});
    mgr.reserve_power(1000.0);
    EXPECT_DOUBLE_EQ(mgr.headroom_w(), 0.0);
    EXPECT_THROW(mgr.reserve_power(-1.0), RequireError);
}

TEST_F(PowerManagerTest, PowerGatingAfterDelay) {
    PowerManagerParams p;
    p.gate_delay = kMillisecond;
    auto mgr = make(p);
    mgr.control_epoch(0, {});
    EXPECT_EQ(mgr.cores_gated(), 0u);
    mgr.control_epoch(2 * kMillisecond, {});
    EXPECT_EQ(mgr.cores_gated(), chip_.core_count());
    for (const Core& c : chip_.cores()) {
        EXPECT_EQ(c.state(), CoreState::Dark);
    }
}

TEST_F(PowerManagerTest, ReservedCoresNotGated) {
    PowerManagerParams p;
    p.gate_delay = kMillisecond;
    auto mgr = make(p);
    chip_.core(3).set_reserved(true);
    mgr.control_epoch(0, {});
    mgr.control_epoch(2 * kMillisecond, {});
    EXPECT_EQ(chip_.core(3).state(), CoreState::Idle);
    EXPECT_EQ(mgr.cores_gated(), chip_.core_count() - 1);
}

TEST_F(PowerManagerTest, TouchDefersGating) {
    PowerManagerParams p;
    p.gate_delay = kMillisecond;
    auto mgr = make(p);
    mgr.control_epoch(0, {});
    mgr.touch(900 * kMicrosecond, 5);
    mgr.control_epoch(kMillisecond, {});
    EXPECT_EQ(chip_.core(5).state(), CoreState::Idle);  // touched recently
    EXPECT_EQ(chip_.core(6).state(), CoreState::Dark);
}

TEST_F(PowerManagerTest, WakeCore) {
    PowerManagerParams p;
    p.gate_delay = kMillisecond;
    auto mgr = make(p);
    mgr.control_epoch(0, {});
    mgr.control_epoch(2 * kMillisecond, {});
    ASSERT_EQ(chip_.core(0).state(), CoreState::Dark);
    const double committed_before = mgr.committed_power_w();
    mgr.wake_core(3 * kMillisecond, 0);
    EXPECT_EQ(chip_.core(0).state(), CoreState::Idle);
    EXPECT_EQ(chip_.core(0).vf_level(), 0);  // wakes frugal
    EXPECT_GT(mgr.committed_power_w(), committed_before);  // charged
    // Waking a non-dark core is a programming error.
    EXPECT_THROW(mgr.wake_core(3 * kMillisecond, 0), RequireError);
}

TEST_F(PowerManagerTest, GatingDisabledKeepsCoresIdle) {
    PowerManagerParams p;
    p.enable_power_gating = false;
    auto mgr = make(p);
    mgr.control_epoch(0, {});
    mgr.control_epoch(seconds(1), {});
    for (const Core& c : chip_.cores()) {
        EXPECT_EQ(c.state(), CoreState::Idle);
    }
}

TEST_F(PowerManagerTest, TestingCoresNotTouchedByActuation) {
    PowerManagerParams p;
    p.enable_power_gating = false;
    auto mgr = make(p);
    make_busy(15);
    chip_.core(15).start_test(0);
    const int test_level = chip_.core(15).vf_level();
    for (int e = 0; e < 50; ++e) {
        mgr.control_epoch(static_cast<SimTime>(e + 1) * 100 * kMicrosecond,
                          {});
    }
    EXPECT_EQ(chip_.core(15).vf_level(), test_level);
}

TEST_F(PowerManagerTest, BangBangStepsWholeChip) {
    PowerManagerParams p;
    p.mode = CappingMode::BangBang;
    p.enable_power_gating = false;
    auto mgr = make(p);
    make_busy(16);  // well over TDP at top level
    mgr.control_epoch(100 * kMicrosecond, {});
    // Every busy core stepped down by exactly one level in one epoch.
    for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(chip_.core(static_cast<CoreId>(i)).vf_level(),
                  chip_.max_vf_level() - 1);
    }
    EXPECT_EQ(mgr.throttle_steps(), 16u);
}

TEST_F(PowerManagerTest, BangBangGrantsMaxUnconditionally) {
    PowerManagerParams p;
    p.mode = CappingMode::BangBang;
    auto mgr = make(p);
    mgr.control_epoch(0, {});
    mgr.reserve_power(1e6);  // ledger ignored in naive mode
    EXPECT_EQ(mgr.grant_task_level(0, 45.0), chip_.max_vf_level());
}

TEST_F(PowerManagerTest, PriorityLookupShieldsImportantCores) {
    PowerManagerParams p;
    p.enable_power_gating = false;
    auto mgr = make(p);
    make_busy(16);
    // Cores 0..3 run "hard-RT" work; the rest are best effort.
    mgr.set_priority_lookup(
        [](CoreId id) { return id < 4 ? 2 : 0; });
    for (int e = 0; e < 50; ++e) {
        mgr.control_epoch(static_cast<SimTime>(e + 1) * 100 * kMicrosecond,
                          {});
    }
    // The chip is far over budget, but the protected cores must keep a
    // strictly higher level than the average victim.
    double protected_sum = 0.0, rest_sum = 0.0;
    for (std::size_t i = 0; i < 16; ++i) {
        (i < 4 ? protected_sum : rest_sum) +=
            chip_.core(static_cast<CoreId>(i)).vf_level();
    }
    EXPECT_GT(protected_sum / 4.0, rest_sum / 12.0);
}

TEST_F(PowerManagerTest, InvalidParamsThrow) {
    PowerManagerParams p;
    p.setpoint_fraction = 0.0;
    EXPECT_THROW(make(p), RequireError);
    p = PowerManagerParams{};
    p.boost_fraction = 0.0;
    EXPECT_THROW(make(p), RequireError);
    p = PowerManagerParams{};
    p.deadband = -0.1;
    EXPECT_THROW(make(p), RequireError);
}

}  // namespace
}  // namespace mcs
