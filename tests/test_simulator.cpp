#include "sim/simulator.hpp"

#include <vector>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

TEST(Simulator, StartsAtZero) {
    Simulator sim;
    EXPECT_EQ(sim.now(), 0u);
    EXPECT_TRUE(sim.idle());
}

TEST(Simulator, RunsEventsInOrderAndAdvancesClock) {
    Simulator sim;
    std::vector<SimTime> seen;
    sim.schedule_at(50, [&] { seen.push_back(sim.now()); });
    sim.schedule_at(10, [&] { seen.push_back(sim.now()); });
    sim.schedule_in(30, [&] { seen.push_back(sim.now()); });
    const auto ran = sim.run_until(100);
    EXPECT_EQ(ran, 3u);
    EXPECT_EQ(seen, (std::vector<SimTime>{10, 30, 50}));
    EXPECT_EQ(sim.now(), 100u);  // clock parked at horizon
}

TEST(Simulator, RunUntilStopsBeforeLaterEvents) {
    Simulator sim;
    bool late = false;
    sim.schedule_at(200, [&] { late = true; });
    sim.run_until(100);
    EXPECT_FALSE(late);
    EXPECT_EQ(sim.now(), 100u);
    EXPECT_EQ(sim.pending_events(), 1u);
    sim.run_until(300);
    EXPECT_TRUE(late);
}

TEST(Simulator, EventsMayScheduleMoreEvents) {
    Simulator sim;
    int chain = 0;
    std::function<void()> next = [&] {
        ++chain;
        if (chain < 5) {
            sim.schedule_in(10, next);
        }
    };
    sim.schedule_at(0, next);
    sim.run_until(1000);
    EXPECT_EQ(chain, 5);
    EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(Simulator, EventAtHorizonRuns) {
    Simulator sim;
    bool ran = false;
    sim.schedule_at(100, [&] { ran = true; });
    sim.run_until(100);
    EXPECT_TRUE(ran);
}

TEST(Simulator, SchedulingIntoPastThrows) {
    Simulator sim;
    sim.schedule_at(10, [] {});
    sim.run_until(50);
    EXPECT_THROW(sim.schedule_at(20, [] {}), RequireError);
}

TEST(Simulator, CancelWorks) {
    Simulator sim;
    bool fired = false;
    const EventId id = sim.schedule_at(10, [&] { fired = true; });
    EXPECT_TRUE(sim.is_pending(id));
    EXPECT_TRUE(sim.cancel(id));
    sim.run_until(100);
    EXPECT_FALSE(fired);
}

TEST(Simulator, PeriodicFiresAtFixedCadence) {
    Simulator sim;
    std::vector<SimTime> fires;
    sim.every(100, [&](SimTime t) { fires.push_back(t); });
    sim.run_until(550);
    EXPECT_EQ(fires, (std::vector<SimTime>{100, 200, 300, 400, 500}));
}

TEST(Simulator, PeriodicWithExplicitPhase) {
    Simulator sim;
    std::vector<SimTime> fires;
    sim.every(100, 30, [&](SimTime t) { fires.push_back(t); });
    sim.run_until(300);
    EXPECT_EQ(fires, (std::vector<SimTime>{30, 130, 230}));
}

TEST(Simulator, StopPeriodicHaltsFiring) {
    Simulator sim;
    int count = 0;
    const auto handle = sim.every(10, [&](SimTime) { ++count; });
    sim.run_until(35);
    EXPECT_EQ(count, 3);
    sim.stop_periodic(handle);
    sim.run_until(100);
    EXPECT_EQ(count, 3);
}

TEST(Simulator, PeriodicMayStopItself) {
    Simulator sim;
    int count = 0;
    Simulator::PeriodicHandle handle;
    handle = sim.every(10, [&](SimTime) {
        if (++count == 2) {
            sim.stop_periodic(handle);
        }
    });
    sim.run_until(1000);
    EXPECT_EQ(count, 2);
}

TEST(Simulator, StopPeriodicTwiceIsNoop) {
    Simulator sim;
    const auto handle = sim.every(10, [](SimTime) {});
    sim.stop_periodic(handle);
    sim.stop_periodic(handle);  // must not crash
    sim.run_until(100);
}

TEST(Simulator, TwoPeriodicsInterleave) {
    Simulator sim;
    std::vector<int> order;
    sim.every(30, [&](SimTime) { order.push_back(3); });
    sim.every(20, [&](SimTime) { order.push_back(2); });
    sim.run_until(60);
    // t=20:2, t=30:3, t=40:2, t=60:2 then 3 (2 scheduled first at equal t? no:
    // both fire at 60; the one whose event was scheduled earlier wins FIFO).
    EXPECT_EQ(order.size(), 5u);
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(order[1], 3);
}

TEST(Simulator, PeriodicValidation) {
    Simulator sim;
    EXPECT_THROW(sim.every(0, [](SimTime) {}), RequireError);
    sim.schedule_at(10, [] {});
    sim.run_until(20);
    EXPECT_THROW(sim.every(10, 5, [](SimTime) {}), RequireError);
}

TEST(Simulator, StepExecutesSingleEvent) {
    Simulator sim;
    int count = 0;
    sim.schedule_at(5, [&] { ++count; });
    sim.schedule_at(10, [&] { ++count; });
    EXPECT_TRUE(sim.step(100));
    EXPECT_EQ(count, 1);
    EXPECT_EQ(sim.now(), 5u);
    EXPECT_TRUE(sim.step(100));
    EXPECT_FALSE(sim.step(100));
    EXPECT_EQ(count, 2);
}

}  // namespace
}  // namespace mcs
