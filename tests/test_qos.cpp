#include <gtest/gtest.h>

#include "core/system.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

WorkloadParams mixed_params() {
    WorkloadParams p;
    p.arrival_rate_hz = 200.0;
    p.best_effort_weight = 0.5;
    p.soft_rt_weight = 0.3;
    p.hard_rt_weight = 0.2;
    return p;
}

TEST(QosWorkload, ClassNames) {
    EXPECT_STREQ(to_string(QosClass::BestEffort), "best-effort");
    EXPECT_STREQ(to_string(QosClass::SoftRealTime), "soft-RT");
    EXPECT_STREQ(to_string(QosClass::HardRealTime), "hard-RT");
}

TEST(QosWorkload, MixApproximatesWeights) {
    WorkloadGenerator gen(mixed_params(), 3);
    const auto apps = gen.generate(seconds(20));
    ASSERT_GT(apps.size(), 2000u);
    double counts[3] = {0, 0, 0};
    for (const auto& app : apps) {
        counts[static_cast<int>(app.qos)] += 1.0;
    }
    const auto n = static_cast<double>(apps.size());
    EXPECT_NEAR(counts[0] / n, 0.5, 0.03);
    EXPECT_NEAR(counts[1] / n, 0.3, 0.03);
    EXPECT_NEAR(counts[2] / n, 0.2, 0.03);
}

TEST(QosWorkload, DeadlinesScaleWithCriticalPath) {
    WorkloadParams p = mixed_params();
    p.hard_deadline_factor = 2.0;
    p.soft_deadline_factor = 4.0;
    p.reference_freq_hz = 2.0e9;
    WorkloadGenerator gen(p, 5);
    const auto apps = gen.generate(seconds(5));
    for (const auto& app : apps) {
        const double ideal_s =
            static_cast<double>(app.graph.critical_path_cycles()) / 2.0e9;
        switch (app.qos) {
            case QosClass::BestEffort:
                EXPECT_EQ(app.relative_deadline, 0u);
                break;
            case QosClass::HardRealTime:
                EXPECT_NEAR(to_seconds(app.relative_deadline), 2.0 * ideal_s,
                            1e-9);
                break;
            case QosClass::SoftRealTime:
                EXPECT_NEAR(to_seconds(app.relative_deadline), 4.0 * ideal_s,
                            1e-9);
                break;
        }
    }
}

TEST(QosWorkload, DefaultIsBestEffortOnly) {
    WorkloadParams p;
    p.arrival_rate_hz = 100.0;
    WorkloadGenerator gen(p, 7);
    for (const auto& app : gen.generate(seconds(5))) {
        EXPECT_EQ(app.qos, QosClass::BestEffort);
        EXPECT_EQ(app.relative_deadline, 0u);
    }
}

TEST(QosWorkload, Validation) {
    WorkloadParams p;
    p.best_effort_weight = p.soft_rt_weight = p.hard_rt_weight = 0.0;
    EXPECT_THROW(WorkloadGenerator(p, 1), RequireError);
    p = WorkloadParams{};
    p.hard_deadline_factor = 0.0;
    EXPECT_THROW(WorkloadGenerator(p, 1), RequireError);
    p = WorkloadParams{};
    p.reference_freq_hz = 0.0;
    EXPECT_THROW(WorkloadGenerator(p, 1), RequireError);
    p = WorkloadParams{};
    p.soft_rt_weight = -0.5;
    EXPECT_THROW(WorkloadGenerator(p, 1), RequireError);
}

SystemConfig qos_system(std::uint64_t seed, double occupancy) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = seed;
    cfg.workload.graphs.min_tasks = 2;
    cfg.workload.graphs.max_tasks = 6;
    cfg.workload.best_effort_weight = 0.5;
    cfg.workload.soft_rt_weight = 0.3;
    cfg.workload.hard_rt_weight = 0.2;
    cfg.workload.reference_freq_hz = technology(cfg.node).max_freq_hz;
    const double capacity = 16.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(occupancy, cfg.workload.graphs, capacity);
    return cfg;
}

TEST(QosSystem, PerClassAccountingAddsUp) {
    ManycoreSystem sys(qos_system(11, 0.5));
    const RunMetrics m = sys.run(2 * kSecond);
    ASSERT_EQ(m.apps_completed_by_class.size(), kQosClassCount);
    std::uint64_t total = 0;
    for (auto c : m.apps_completed_by_class) {
        total += c;
    }
    EXPECT_EQ(total, m.apps_completed);
    // RT classes have deadline outcomes for each completion.
    for (std::size_t cls = 1; cls < kQosClassCount; ++cls) {
        EXPECT_EQ(m.deadlines_met_by_class[cls] +
                      m.deadlines_missed_by_class[cls],
                  m.apps_completed_by_class[cls]);
    }
    EXPECT_EQ(m.deadlines_met_by_class[0] + m.deadlines_missed_by_class[0],
              0u);  // best effort carries no deadlines
}

TEST(QosSystem, PriorityProtectsHardRtUnderOverload) {
    auto miss_rate = [](bool blind) {
        ManycoreSystem sys(qos_system(13, 2.0));  // heavy overload
        sys.set_priority_blind(blind);
        const RunMetrics m = sys.run(3 * kSecond);
        const auto met = m.deadlines_met_by_class[2];
        const auto missed = m.deadlines_missed_by_class[2];
        if (met + missed == 0) {
            return 1.0;
        }
        return static_cast<double>(missed) /
               static_cast<double>(met + missed);
    };
    const double aware = miss_rate(false);
    const double blind = miss_rate(true);
    EXPECT_LT(aware, blind * 0.5);
}

TEST(QosSystem, PriorityBlindAfterRunRejected) {
    ManycoreSystem sys(qos_system(17, 0.5));
    sys.run(100 * kMillisecond);
    EXPECT_THROW(sys.set_priority_blind(true), RequireError);
}

TEST(QosSystem, DeterministicWithQos) {
    auto run = [] {
        ManycoreSystem sys(qos_system(19, 0.8));
        return sys.run(kSecond);
    };
    const RunMetrics a = run();
    const RunMetrics b = run();
    EXPECT_EQ(a.apps_completed_by_class, b.apps_completed_by_class);
    EXPECT_EQ(a.deadlines_met_by_class, b.deadlines_met_by_class);
}

}  // namespace
}  // namespace mcs
