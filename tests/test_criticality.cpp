#include "aging/criticality.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

class CriticalityTest : public ::testing::Test {
protected:
    CriticalityTest()
        : chip_(2, 2, TechNode::nm16) {}

    Chip chip_;
};

TEST_F(CriticalityTest, FreshCoreHasZeroCriticality) {
    CriticalityEvaluator eval;
    EXPECT_DOUBLE_EQ(eval.evaluate(chip_.core(0), 0, 0.0), 0.0);
}

TEST_F(CriticalityTest, UtilizationTermGrowsWithWork) {
    CriticalityParams p;
    p.w_util = 1.0;
    p.w_time = 0.0;
    p.util_ref_cycles = 1.0e9;
    CriticalityEvaluator eval(p);
    Core& c = chip_.core(0);
    c.start_task(0);
    c.finish_task(100 * kMillisecond);  // 0.25e9 cycles at 2.5 GHz
    EXPECT_NEAR(eval.evaluate(c, 100 * kMillisecond, 0.0), 0.25, 1e-9);
}

TEST_F(CriticalityTest, UtilizationTermSaturates) {
    CriticalityParams p;
    p.w_util = 1.0;
    p.w_time = 0.0;
    p.util_ref_cycles = 1.0e6;
    p.saturation = 2.0;
    CriticalityEvaluator eval(p);
    Core& c = chip_.core(0);
    c.start_task(0);
    c.finish_task(seconds(1));  // 2.5e9 cycles >> ref
    EXPECT_DOUBLE_EQ(eval.evaluate(c, seconds(1), 0.0), 2.0);
}

TEST_F(CriticalityTest, TimeTermGrowsSinceLastTest) {
    CriticalityParams p;
    p.w_util = 0.0;
    p.w_time = 1.0;
    p.time_ref = seconds(2);
    CriticalityEvaluator eval(p);
    const Core& c = chip_.core(0);
    EXPECT_NEAR(eval.evaluate(c, seconds(1), 0.0), 0.5, 1e-9);
    EXPECT_NEAR(eval.evaluate(c, seconds(2), 0.0), 1.0, 1e-9);
}

TEST_F(CriticalityTest, CompletedTestResetsBothTerms) {
    CriticalityParams p;
    p.w_util = 0.5;
    p.w_time = 0.5;
    CriticalityEvaluator eval(p);
    Core& c = chip_.core(0);
    c.start_task(0);
    c.finish_task(seconds(1));
    c.start_test(seconds(1));
    c.finish_test(seconds(1) + milliseconds(3), true);
    EXPECT_NEAR(eval.evaluate(c, seconds(1) + milliseconds(3), 0.0), 0.0,
                1e-9);
}

TEST_F(CriticalityTest, AgingTermUsesNormalizedDamage) {
    CriticalityParams p;
    p.w_util = 0.0;
    p.w_time = 0.0;
    p.w_aging = 1.0;
    CriticalityEvaluator eval(p);
    EXPECT_DOUBLE_EQ(eval.evaluate(chip_.core(0), 0, 0.7), 0.7);
    // Clamped to [0, 1].
    EXPECT_DOUBLE_EQ(eval.evaluate(chip_.core(0), 0, 1.5), 1.0);
}

TEST_F(CriticalityTest, EvaluateChipNormalizesDamage) {
    CriticalityParams p;
    p.w_util = 0.0;
    p.w_time = 0.0;
    p.w_aging = 1.0;
    CriticalityEvaluator eval(p);
    const std::vector<double> damage{0.0, 1e-6, 2e-6, 4e-6};
    const auto crit = eval.evaluate_chip(chip_, 0, damage);
    ASSERT_EQ(crit.size(), 4u);
    EXPECT_DOUBLE_EQ(crit[0], 0.0);
    EXPECT_DOUBLE_EQ(crit[1], 0.25);
    EXPECT_DOUBLE_EQ(crit[3], 1.0);
}

TEST_F(CriticalityTest, EvaluateChipWithoutDamage) {
    CriticalityEvaluator eval;
    const auto crit = eval.evaluate_chip(chip_, seconds(1), {});
    ASSERT_EQ(crit.size(), 4u);
    for (double v : crit) {
        EXPECT_GT(v, 0.0);  // time term alone
    }
}

TEST_F(CriticalityTest, EligibilityThreshold) {
    CriticalityParams p;
    p.threshold = 0.5;
    CriticalityEvaluator eval(p);
    EXPECT_FALSE(eval.eligible(0.49));
    EXPECT_TRUE(eval.eligible(0.5));
}

TEST(CriticalityModes, PresetsMatchPaper) {
    const auto util = CriticalityParams::for_mode(
        CriticalityMode::UtilizationDriven);
    EXPECT_GT(util.w_util, 0.0);
    EXPECT_DOUBLE_EQ(util.w_aging, 0.0);

    const auto time = CriticalityParams::for_mode(CriticalityMode::TimeDriven);
    EXPECT_DOUBLE_EQ(time.w_util, 0.0);
    EXPECT_DOUBLE_EQ(time.w_time, 1.0);

    const auto hybrid = CriticalityParams::for_mode(CriticalityMode::Hybrid);
    EXPECT_GT(hybrid.w_aging, 0.0);
    EXPECT_GT(hybrid.w_util, 0.0);
}

TEST(CriticalityModes, Names) {
    EXPECT_STREQ(to_string(CriticalityMode::UtilizationDriven), "utilization");
    EXPECT_STREQ(to_string(CriticalityMode::TimeDriven), "time");
    EXPECT_STREQ(to_string(CriticalityMode::Hybrid), "hybrid");
}

TEST(CriticalityValidation, RejectsDegenerateParams) {
    CriticalityParams p;
    p.util_ref_cycles = 0.0;
    EXPECT_THROW(CriticalityEvaluator{p}, RequireError);
    p = CriticalityParams{};
    p.time_ref = 0;
    EXPECT_THROW(CriticalityEvaluator{p}, RequireError);
    p = CriticalityParams{};
    p.w_util = p.w_time = p.w_aging = 0.0;
    EXPECT_THROW(CriticalityEvaluator{p}, RequireError);
    p = CriticalityParams{};
    p.w_util = -1.0;
    EXPECT_THROW(CriticalityEvaluator{p}, RequireError);
}

// Property sweep: criticality is monotone in elapsed time for every mode.
class CriticalityMonotone : public ::testing::TestWithParam<CriticalityMode> {
};

TEST_P(CriticalityMonotone, TimeMonotonicity) {
    CriticalityEvaluator eval(CriticalityParams::for_mode(GetParam()));
    Chip chip(1, 1, TechNode::nm16);
    double prev = -1.0;
    for (int s = 0; s <= 10; ++s) {
        const double c =
            eval.evaluate(chip.core(0), seconds(static_cast<unsigned>(s)),
                          0.0);
        EXPECT_GE(c, prev);
        prev = c;
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, CriticalityMonotone,
                         ::testing::Values(CriticalityMode::UtilizationDriven,
                                           CriticalityMode::TimeDriven,
                                           CriticalityMode::Hybrid));

}  // namespace
}  // namespace mcs
