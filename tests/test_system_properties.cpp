// Property-style integration tests: system-wide invariants that must hold
// for arbitrary seeds and a range of configurations.

#include <numeric>

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

struct PropertyCase {
    std::uint64_t seed;
    int width;
    int height;
    double occupancy;
    SchedulerKind scheduler;
    MapperKind mapper;
    bool faults;
};

SystemConfig make_config(const PropertyCase& pc) {
    SystemConfig cfg;
    cfg.width = pc.width;
    cfg.height = pc.height;
    cfg.seed = pc.seed;
    cfg.scheduler = pc.scheduler;
    cfg.mapper = pc.mapper;
    cfg.enable_fault_injection = pc.faults;
    cfg.faults.base_rate_per_core_s = pc.faults ? 0.1 : 0.0;
    cfg.workload.graphs.min_tasks = 2;
    cfg.workload.graphs.max_tasks =
        std::min(8, pc.width * pc.height / 2);
    const double capacity = static_cast<double>(pc.width) *
                            static_cast<double>(pc.height) *
                            technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(pc.occupancy, cfg.workload.graphs, capacity);
    return cfg;
}

class SystemProperty : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(SystemProperty, InvariantsHold) {
    const PropertyCase pc = GetParam();
    SystemConfig cfg = make_config(pc);
    ManycoreSystem sys(cfg);

    // Trace invariants checked on every sample.
    sys.set_trace_sink([&](const TraceSample& s) {
        ASSERT_GE(s.total_power_w, 0.0);
        ASSERT_NEAR(s.total_power_w,
                    s.workload_power_w + s.test_power_w + s.other_power_w,
                    1e-9);
        ASSERT_GE(s.cores_busy, 0);
        ASSERT_LE(s.cores_busy + s.cores_testing + s.cores_dark,
                  pc.width * pc.height);
        ASSERT_GE(s.max_temp_c, 20.0);
        ASSERT_LE(s.max_temp_c, 150.0);
    });

    const RunMetrics m = sys.run(2 * kSecond);

    // Conservation: completions never exceed arrivals; queue remainder
    // accounts for the difference at the application level.
    ASSERT_LE(m.apps_completed + m.apps_rejected, m.apps_arrived);

    // Energy: split sums to total; total agrees with mean power.
    ASSERT_NEAR(m.energy_total_j,
                m.energy_busy_j + m.energy_test_j + m.energy_idle_j +
                    m.energy_noc_j,
                1e-6);
    ASSERT_NEAR(m.energy_total_j, m.mean_power_w * to_seconds(m.sim_time),
                m.energy_total_j * 0.06);

    // Tests: the per-level histogram counts completed suites exactly.
    const std::uint64_t histogram_total = std::accumulate(
        m.tests_per_vf_level.begin(), m.tests_per_vf_level.end(),
        std::uint64_t{0});
    ASSERT_EQ(histogram_total, m.tests_completed);

    // Fault bookkeeping.
    ASSERT_LE(m.faults_detected, m.faults_injected);
    if (!pc.faults) {
        ASSERT_EQ(m.faults_injected, 0u);
        ASSERT_EQ(m.corrupted_tasks, 0u);
    }

    // Power accounting.
    ASSERT_GT(m.tdp_w, 0.0);
    ASSERT_LE(m.mean_power_w, m.max_power_w + 1e-12);
    if (m.tdp_violations == 0) {
        ASSERT_EQ(m.worst_overshoot_w, 0.0);
    }

    // Chip end state: no core may be left Busy/Testing beyond the horizon's
    // bookkeeping (they may be mid-task, but counters must be coherent).
    std::size_t faulty = 0;
    for (const Core& c : sys.chip().cores()) {
        faulty += c.state() == CoreState::Faulty ? 1 : 0;
        ASSERT_LE(c.busy_fraction(m.sim_time), 1.0 + 1e-9);
    }
    ASSERT_EQ(faulty, m.faults_detected);

    // Aging sanity: damage is non-negative and bounded by run length.
    ASSERT_GE(m.mean_damage, 0.0);
    ASSERT_LE(m.max_damage,
              to_seconds(m.sim_time) / sys.config().aging.nominal_lifetime_s +
                  1e-9);
}

TEST_P(SystemProperty, DeterministicReplay) {
    const PropertyCase pc = GetParam();
    auto run = [&] {
        ManycoreSystem sys(make_config(pc));
        return sys.run(kSecond);
    };
    const RunMetrics a = run();
    const RunMetrics b = run();
    ASSERT_EQ(a.tasks_completed, b.tasks_completed);
    ASSERT_EQ(a.tests_completed, b.tests_completed);
    ASSERT_EQ(a.tests_aborted, b.tests_aborted);
    ASSERT_EQ(a.faults_injected, b.faults_injected);
    ASSERT_EQ(a.noc_messages, b.noc_messages);
    ASSERT_DOUBLE_EQ(a.energy_total_j, b.energy_total_j);
    ASSERT_DOUBLE_EQ(a.mean_power_w, b.mean_power_w);
    ASSERT_DOUBLE_EQ(a.max_damage, b.max_damage);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SystemProperty,
    ::testing::Values(
        PropertyCase{1, 4, 4, 0.4, SchedulerKind::PowerAware,
                     MapperKind::TestAware, false},
        PropertyCase{2, 4, 4, 0.9, SchedulerKind::PowerAware,
                     MapperKind::TestAware, true},
        PropertyCase{3, 8, 8, 0.6, SchedulerKind::PowerAware,
                     MapperKind::UtilizationOriented, false},
        PropertyCase{4, 6, 3, 0.7, SchedulerKind::Periodic,
                     MapperKind::Contiguous, true},
        PropertyCase{5, 3, 6, 1.2, SchedulerKind::Greedy,
                     MapperKind::Random, false},
        PropertyCase{6, 5, 5, 0.5, SchedulerKind::None,
                     MapperKind::FirstFit, true},
        PropertyCase{7, 2, 2, 0.8, SchedulerKind::PowerAware,
                     MapperKind::TestAware, true},
        PropertyCase{8, 8, 8, 1.5, SchedulerKind::Greedy,
                     MapperKind::TestAware, true}));

// Golden regression: locks the exact deterministic outcome of one known
// configuration. If a code change shifts these numbers, that is a behaviour
// change -- update deliberately with the reason in the commit message.
TEST(SystemGolden, ReferenceRunIsStable) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = 2024;
    cfg.workload.graphs.min_tasks = 2;
    cfg.workload.graphs.max_tasks = 6;
    cfg.workload.arrival_rate_hz = 400.0;
    ManycoreSystem sys(cfg);
    const RunMetrics a = sys.run(2 * kSecond);
    // Cross-check structural facts rather than floating point: counts are
    // exact under determinism.
    ManycoreSystem sys2(cfg);
    const RunMetrics b = sys2.run(2 * kSecond);
    EXPECT_EQ(a.tasks_completed, b.tasks_completed);
    EXPECT_EQ(a.tests_completed, b.tests_completed);
    EXPECT_GT(a.apps_completed, 700u);   // sanity band for this config
    EXPECT_LT(a.apps_completed, 900u);
    EXPECT_EQ(a.tdp_violations, 0u);
}

}  // namespace
}  // namespace mcs
