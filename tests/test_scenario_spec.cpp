#include "scenario/scenario_spec.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/json.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace mcs {
namespace {

/// A spec exercising every directive kind and every optional field.
const char* kFullSpec =
    "{\"schema\":\"mcs.scenario.v1\",\"name\":\"full\",\"directives\":["
    "{\"at_us\":100,\"kind\":\"arrival-burst\",\"apps\":3},"
    "{\"at_us\":200,\"kind\":\"arrival-burst\",\"apps\":2,\"tasks\":5,"
    "\"qos\":\"soft-RT\"},"
    "{\"at_us\":300,\"kind\":\"abort-tests\"},"
    "{\"at_us\":400,\"kind\":\"abort-tests\",\"cores\":[1,4,9]},"
    "{\"at_us\":500,\"kind\":\"invalidate-progress\",\"cores\":[0,2]},"
    "{\"at_us\":600,\"kind\":\"inject-fault\",\"core\":7,\"unit\":\"FPU\","
    "\"fault\":\"delay\"},"
    "{\"at_us\":700,\"kind\":\"inject-wear\",\"cores\":[3,5],"
    "\"damage\":0.25},"
    "{\"at_us\":800,\"kind\":\"inject-wear\",\"damage\":0.005},"
    "{\"at_us\":900,\"kind\":\"set-budget\",\"tdp_scale\":0.6},"
    "{\"at_us\":1000,\"kind\":\"set-vf\",\"cores\":[0,1],\"level\":2},"
    "{\"at_us\":1100,\"kind\":\"set-vf\",\"level\":0}]}";

TEST(ScenarioSpec, ParsesEveryDirectiveKind) {
    const ScenarioSpec spec = parse_scenario_text(kFullSpec);
    EXPECT_EQ(spec.name, "full");
    ASSERT_EQ(spec.directives.size(), 11u);
    EXPECT_EQ(spec.directives[0].kind, DirectiveKind::ArrivalBurst);
    EXPECT_EQ(spec.directives[0].at, 100 * kMicrosecond);
    EXPECT_EQ(spec.directives[0].apps, 3u);
    EXPECT_EQ(spec.directives[0].tasks, 0);
    EXPECT_EQ(spec.directives[0].qos, QosClass::BestEffort);
    EXPECT_EQ(spec.directives[1].tasks, 5);
    EXPECT_EQ(spec.directives[1].qos, QosClass::SoftRealTime);
    EXPECT_TRUE(spec.directives[2].cores.empty());
    EXPECT_EQ(spec.directives[3].cores, (std::vector<CoreId>{1, 4, 9}));
    EXPECT_EQ(spec.directives[5].core, 7u);
    EXPECT_EQ(spec.directives[5].unit, FunctionalUnit::Fpu);
    EXPECT_EQ(spec.directives[5].fault, FaultKind::Delay);
    EXPECT_DOUBLE_EQ(spec.directives[6].damage, 0.25);
    EXPECT_DOUBLE_EQ(spec.directives[8].tdp_scale, 0.6);
    EXPECT_EQ(spec.directives[9].vf_level, 2);
    EXPECT_EQ(spec.directives[10].vf_level, 0);
}

// ------------------------------------------------------- canonical form

TEST(ScenarioSpec, CanonicalFormIsAFixedPoint) {
    const ScenarioSpec spec = parse_scenario_text(kFullSpec);
    const std::string canon = canonical_scenario_json(spec);
    // Canonical bytes reparse to a spec that re-canonicalizes identically.
    const std::string again =
        canonical_scenario_json(parse_scenario_text(canon));
    EXPECT_EQ(again, canon);
    // kFullSpec is already written in canonical field order.
    EXPECT_EQ(canon, kFullSpec);
}

TEST(ScenarioSpec, CanonicalizationNormalizesKeyOrder) {
    // Same document with directive fields and top-level keys shuffled.
    const char* shuffled =
        "{\"name\":\"n\",\"directives\":[{\"kind\":\"inject-wear\","
        "\"damage\":0.5,\"at_us\":10,\"cores\":[2,3]}],"
        "\"schema\":\"mcs.scenario.v1\"}";
    const std::string canon =
        canonical_scenario_json(parse_scenario_text(shuffled));
    EXPECT_EQ(canon,
              "{\"schema\":\"mcs.scenario.v1\",\"name\":\"n\","
              "\"directives\":[{\"at_us\":10,\"kind\":\"inject-wear\","
              "\"cores\":[2,3],\"damage\":0.5}]}");
}

TEST(ScenarioSpec, FingerprintIsStableAndDiscriminating) {
    const ScenarioSpec a = parse_scenario_text(kFullSpec);
    EXPECT_EQ(scenario_fingerprint(a), scenario_fingerprint(a));
    EXPECT_EQ(scenario_fingerprint(a).size(), 16u);
    for (const char c : scenario_fingerprint(a)) {
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
    }

    ScenarioSpec b = a;
    b.directives[0].apps += 1;
    EXPECT_NE(scenario_fingerprint(b), scenario_fingerprint(a));
    ScenarioSpec c = a;
    c.name = "renamed";
    EXPECT_NE(scenario_fingerprint(c), scenario_fingerprint(a));
}

// ----------------------------------------------------------- bad inputs

void expect_rejected(const std::string& text, const std::string& label) {
    EXPECT_THROW(parse_scenario_text(text), RequireError) << label;
}

TEST(ScenarioSpec, RejectsMalformedDocuments) {
    expect_rejected("", "empty");
    expect_rejected("null", "null");
    expect_rejected("42", "number");
    expect_rejected("[]", "array");
    expect_rejected("{}", "empty object");
    expect_rejected("{\"schema\":\"mcs.scenario.v1\"}", "no name");
    expect_rejected(
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"x\"}", "no directives");
    expect_rejected(
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"\",\"directives\":["
        "{\"at_us\":1,\"kind\":\"abort-tests\"}]}",
        "empty name");
    expect_rejected(
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"x\",\"directives\":[]}",
        "empty directives");
    expect_rejected(
        "{\"schema\":\"mcs.scenario.v2\",\"name\":\"x\",\"directives\":["
        "{\"at_us\":1,\"kind\":\"abort-tests\"}]}",
        "wrong schema version");
    expect_rejected(
        "{\"schema\":\"mcs.snapshot.v1\",\"name\":\"x\",\"directives\":["
        "{\"at_us\":1,\"kind\":\"abort-tests\"}]}",
        "wrong schema family");
    expect_rejected(
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"x\",\"extra\":1,"
        "\"directives\":[{\"at_us\":1,\"kind\":\"abort-tests\"}]}",
        "unknown top-level key");
}

TEST(ScenarioSpec, RejectsBadTimes) {
    expect_rejected(
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"x\",\"directives\":["
        "{\"at_us\":0,\"kind\":\"abort-tests\"}]}",
        "zero time");
    expect_rejected(
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"x\",\"directives\":["
        "{\"at_us\":5,\"kind\":\"abort-tests\"},"
        "{\"at_us\":5,\"kind\":\"abort-tests\"}]}",
        "duplicate time");
    expect_rejected(
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"x\",\"directives\":["
        "{\"at_us\":9,\"kind\":\"abort-tests\"},"
        "{\"at_us\":3,\"kind\":\"abort-tests\"}]}",
        "decreasing time");
    expect_rejected(
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"x\",\"directives\":["
        "{\"at_us\":18446744073709551615,\"kind\":\"abort-tests\"}]}",
        "clock overflow");
}

TEST(ScenarioSpec, RejectsBadDirectives) {
    const auto wrap = [](const std::string& d) {
        return "{\"schema\":\"mcs.scenario.v1\",\"name\":\"x\","
               "\"directives\":[" +
               d + "]}";
    };
    expect_rejected(wrap("{\"at_us\":1}"), "no kind");
    expect_rejected(wrap("{\"kind\":\"abort-tests\"}"), "no at_us");
    expect_rejected(wrap("{\"at_us\":1,\"kind\":\"explode\"}"),
                    "unknown kind");
    expect_rejected(
        wrap("{\"at_us\":1,\"kind\":\"abort-tests\",\"apps\":1}"),
        "foreign field");
    expect_rejected(
        wrap("{\"at_us\":1,\"kind\":\"arrival-burst\",\"apps\":0}"),
        "apps = 0");
    expect_rejected(
        wrap("{\"at_us\":1,\"kind\":\"arrival-burst\",\"apps\":4097}"),
        "apps too large");
    expect_rejected(
        wrap("{\"at_us\":1,\"kind\":\"arrival-burst\",\"apps\":1,"
             "\"tasks\":0}"),
        "tasks = 0");
    expect_rejected(
        wrap("{\"at_us\":1,\"kind\":\"arrival-burst\",\"apps\":1,"
             "\"qos\":\"ultra-RT\"}"),
        "unknown qos");
    expect_rejected(wrap("{\"at_us\":1,\"kind\":\"abort-tests\","
                         "\"cores\":[]}"),
                    "empty cores array");
    expect_rejected(wrap("{\"at_us\":1,\"kind\":\"abort-tests\","
                         "\"cores\":[3,3]}"),
                    "duplicate core");
    expect_rejected(wrap("{\"at_us\":1,\"kind\":\"abort-tests\","
                         "\"cores\":[5,2]}"),
                    "unsorted cores");
    expect_rejected(wrap("{\"at_us\":1,\"kind\":\"inject-fault\","
                         "\"core\":0,\"unit\":\"GPU\","
                         "\"fault\":\"stuck-at\"}"),
                    "unknown unit");
    expect_rejected(wrap("{\"at_us\":1,\"kind\":\"inject-fault\","
                         "\"core\":0,\"unit\":\"ALU\","
                         "\"fault\":\"gamma-ray\"}"),
                    "unknown fault");
    expect_rejected(wrap("{\"at_us\":1,\"kind\":\"inject-fault\","
                         "\"core\":0,\"unit\":\"ALU\"}"),
                    "missing fault");
    expect_rejected(wrap("{\"at_us\":1,\"kind\":\"inject-wear\"}"),
                    "missing damage");
    expect_rejected(
        wrap("{\"at_us\":1,\"kind\":\"inject-wear\",\"damage\":0}"),
        "zero damage");
    expect_rejected(
        wrap("{\"at_us\":1,\"kind\":\"inject-wear\",\"damage\":-0.5}"),
        "negative damage");
    expect_rejected(wrap("{\"at_us\":1,\"kind\":\"set-budget\"}"),
                    "missing tdp_scale");
    expect_rejected(
        wrap("{\"at_us\":1,\"kind\":\"set-budget\",\"tdp_scale\":0}"),
        "zero tdp_scale");
    expect_rejected(wrap("{\"at_us\":1,\"kind\":\"set-vf\"}"),
                    "missing level");
    expect_rejected(wrap("{\"at_us\":1,\"kind\":\"set-vf\",\"level\":65}"),
                    "level out of range");
}

TEST(ScenarioSpec, RejectsOversizedAndDeepDocuments) {
    // Past the 1 MiB scenario-specific byte limit.
    std::string big =
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"";
    big.append((std::size_t{1} << 20) + 16, 'a');
    big += "\",\"directives\":[{\"at_us\":1,\"kind\":\"abort-tests\"}]}";
    expect_rejected(big, "oversized document");

    // Past the depth-8 limit.
    std::string deep = "{\"schema\":\"mcs.scenario.v1\",\"name\":\"x\","
                       "\"directives\":";
    deep.append(16, '[');
    deep.append(16, ']');
    deep += "}";
    expect_rejected(deep, "over-deep document");
}

// ----------------------------------------------------------------- fuzz

TEST(ScenarioSpec, TruncationAtEveryByteFailsCleanly) {
    const std::string canon =
        canonical_scenario_json(parse_scenario_text(kFullSpec));
    for (std::size_t cut = 0; cut < canon.size(); ++cut) {
        try {
            parse_scenario_text(canon.substr(0, cut));
            ADD_FAILURE() << "truncation at " << cut << " parsed";
        } catch (const RequireError&) {
            // Expected: every strict prefix is rejected cleanly.
        }
    }
}

TEST(ScenarioSpec, RandomMutationsNeverCrashTheParser) {
    const std::string canon =
        canonical_scenario_json(parse_scenario_text(kFullSpec));
    Rng rng(20260808);
    int survivors = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        std::string text = canon;
        // 1-3 random byte edits: overwrite, insert, or erase.
        const int edits = 1 + static_cast<int>(rng.index(3));
        for (int e = 0; e < edits && !text.empty(); ++e) {
            const std::size_t pos = rng.index(text.size());
            const char byte = static_cast<char>(rng.index(256));
            switch (rng.index(3)) {
                case 0: text[pos] = byte; break;
                case 1: text.insert(text.begin() + pos, byte); break;
                default: text.erase(text.begin() + pos); break;
            }
        }
        try {
            const ScenarioSpec spec = parse_scenario_text(text);
            // A mutation that still parses must still canonicalize to a
            // fixed point -- the invariant holds for every accepted input.
            const std::string c = canonical_scenario_json(spec);
            EXPECT_EQ(canonical_scenario_json(parse_scenario_text(c)), c);
            ++survivors;
        } catch (const RequireError&) {
            // Clean rejection is the expected outcome; anything else
            // (segfault, std::bad_alloc, uncaught logic_error) fails the
            // test by escaping the catch.
        }
    }
    // Sanity: the mutator is actually producing mostly-broken documents.
    EXPECT_LT(survivors, 1000);
}

}  // namespace
}  // namespace mcs
