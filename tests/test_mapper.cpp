#include "mapping/contiguous_mapper.hpp"

#include <set>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

/// Owns the buffers behind a PlatformView for test scenarios.
struct ViewFixture {
    int width;
    int height;
    std::vector<std::uint8_t> alloc;
    std::vector<double> util;
    std::vector<double> crit;
    std::vector<std::uint8_t> testing;

    ViewFixture(int w, int h)
        : width(w),
          height(h),
          alloc(static_cast<std::size_t>(w * h), 1),
          util(static_cast<std::size_t>(w * h), 0.0),
          crit(static_cast<std::size_t>(w * h), 0.0),
          testing(static_cast<std::size_t>(w * h), 0) {}

    PlatformView view() const {
        PlatformView v;
        v.width = width;
        v.height = height;
        v.allocatable = alloc;
        v.utilization = util;
        v.criticality = crit;
        v.testing = testing;
        return v;
    }
};

void expect_valid_mapping(const MappingResult& r, const PlatformView& v,
                          std::size_t n) {
    ASSERT_EQ(r.cores.size(), n);
    std::set<CoreId> unique(r.cores.begin(), r.cores.end());
    EXPECT_EQ(unique.size(), n) << "duplicate cores in mapping";
    for (CoreId id : r.cores) {
        ASSERT_LT(id, v.core_count());
        EXPECT_TRUE(v.allocatable[id]);
    }
}

TEST(ContiguousMapper, MapsRequestedCount) {
    ViewFixture f(8, 8);
    auto mapper = ContiguousMapper::plain();
    Rng rng(1);
    const auto r = mapper.map({1, 9}, f.view(), rng);
    ASSERT_TRUE(r.has_value());
    expect_valid_mapping(*r, f.view(), 9);
}

TEST(ContiguousMapper, RegionIsCompact) {
    ViewFixture f(8, 8);
    auto mapper = ContiguousMapper::plain();
    Rng rng(1);
    const auto r = mapper.map({1, 9}, f.view(), rng);
    ASSERT_TRUE(r.has_value());
    // 9 cores on an empty mesh should form (close to) a 3x3 block:
    // average pairwise distance of a perfect 3x3 block is 2.
    EXPECT_LE(mapping_dispersion(f.view(), r->cores), 2.5);
}

TEST(ContiguousMapper, ReturnsNulloptWhenInsufficient) {
    ViewFixture f(4, 4);
    for (std::size_t i = 0; i < 10; ++i) {
        f.alloc[i] = 0;
    }
    auto mapper = ContiguousMapper::plain();
    Rng rng(1);
    EXPECT_FALSE(mapper.map({1, 7}, f.view(), rng).has_value());
    EXPECT_TRUE(mapper.map({1, 6}, f.view(), rng).has_value());
}

TEST(ContiguousMapper, NeverPicksUnallocatable) {
    ViewFixture f(6, 6);
    // Checkerboard free pattern.
    for (std::size_t i = 0; i < f.alloc.size(); ++i) {
        f.alloc[i] = (i % 2 == 0) ? 1 : 0;
    }
    auto mapper = ContiguousMapper::plain();
    Rng rng(1);
    const auto r = mapper.map({1, 10}, f.view(), rng);
    ASSERT_TRUE(r.has_value());
    expect_valid_mapping(*r, f.view(), 10);
}

TEST(ContiguousMapper, PrefersFreeRegion) {
    ViewFixture f(8, 4);
    // Left half occupied.
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
            f.alloc[static_cast<std::size_t>(y * 8 + x)] = 0;
        }
    }
    auto mapper = ContiguousMapper::plain();
    Rng rng(1);
    const auto r = mapper.map({1, 4}, f.view(), rng);
    ASSERT_TRUE(r.has_value());
    for (CoreId id : r->cores) {
        EXPECT_GE(static_cast<int>(id) % 8, 4) << "mapped into occupied half";
    }
}

TEST(ContiguousMapper, UtilizationOrientedAvoidsWornRegion) {
    ViewFixture f(8, 4);
    // Left half heavily utilized (but free).
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
            f.util[static_cast<std::size_t>(y * 8 + x)] = 0.9;
        }
    }
    auto mapper = ContiguousMapper::utilization_oriented();
    Rng rng(1);
    const auto r = mapper.map({1, 4}, f.view(), rng);
    ASSERT_TRUE(r.has_value());
    int right = 0;
    for (CoreId id : r->cores) {
        right += (static_cast<int>(id) % 8 >= 4) ? 1 : 0;
    }
    EXPECT_GE(right, 3);
}

TEST(ContiguousMapper, TestAwareAvoidsCriticalCores) {
    ViewFixture f(8, 4);
    // Left half highly test-critical.
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
            f.crit[static_cast<std::size_t>(y * 8 + x)] = 1.5;
        }
    }
    auto mapper = ContiguousMapper::test_aware();
    Rng rng(1);
    const auto r = mapper.map({1, 4}, f.view(), rng);
    ASSERT_TRUE(r.has_value());
    for (CoreId id : r->cores) {
        EXPECT_GE(static_cast<int>(id) % 8, 4)
            << "test-aware mapper picked a critical core unnecessarily";
    }
}

TEST(ContiguousMapper, ThermalAwareAvoidsHotRegion) {
    ViewFixture f(8, 4);
    std::vector<double> temps(32, 45.0);
    for (int y = 0; y < 4; ++y) {
        for (int x = 0; x < 4; ++x) {
            temps[static_cast<std::size_t>(y * 8 + x)] = 85.0;  // hot half
        }
    }
    auto mapper = ContiguousMapper::thermal_aware();
    Rng rng(1);
    PlatformView v = f.view();
    v.temperature_c = temps;
    const auto r = mapper.map({1, 4}, v, rng);
    ASSERT_TRUE(r.has_value());
    for (CoreId id : r->cores) {
        EXPECT_GE(static_cast<int>(id) % 8, 4)
            << "thermal-aware mapper picked a hot core unnecessarily";
    }
    // Without temperature data it behaves like the test-aware mapper.
    const auto r2 = mapper.map({1, 4}, f.view(), rng);
    EXPECT_TRUE(r2.has_value());
}

TEST(ContiguousMapper, TestAwareAvoidsTestingCores) {
    ViewFixture f(4, 4);
    // Core 5 is mid-test; 8 cores requested out of 16 -- plenty of room to
    // avoid it.
    f.testing[5] = 1;
    auto mapper = ContiguousMapper::test_aware();
    Rng rng(1);
    const auto r = mapper.map({1, 8}, f.view(), rng);
    ASSERT_TRUE(r.has_value());
    for (CoreId id : r->cores) {
        EXPECT_NE(id, 5u);
    }
}

TEST(ContiguousMapper, ClaimsTestingCoreOnlyWhenNecessary) {
    ViewFixture f(4, 4);
    f.testing[5] = 1;
    auto mapper = ContiguousMapper::test_aware();
    Rng rng(1);
    const auto r = mapper.map({1, 16}, f.view(), rng);  // needs every core
    ASSERT_TRUE(r.has_value());
    std::set<CoreId> cores(r->cores.begin(), r->cores.end());
    EXPECT_TRUE(cores.count(5));
}

TEST(ContiguousMapper, PlainIgnoresTestingCores) {
    ViewFixture f(4, 4);
    f.testing[0] = 1;
    auto mapper = ContiguousMapper::plain();
    Rng rng(1);
    const auto r = mapper.map({1, 16}, f.view(), rng);
    ASSERT_TRUE(r.has_value());
    expect_valid_mapping(*r, f.view(), 16);
}

TEST(RandomMapper, ValidAndSeedDeterministic) {
    ViewFixture f(6, 6);
    RandomMapper mapper;
    Rng a(5), b(5);
    const auto ra = mapper.map({1, 8}, f.view(), a);
    const auto rb = mapper.map({1, 8}, f.view(), b);
    ASSERT_TRUE(ra.has_value());
    expect_valid_mapping(*ra, f.view(), 8);
    EXPECT_EQ(ra->cores, rb->cores);
}

TEST(RandomMapper, MoreDispersedThanContiguous) {
    ViewFixture f(8, 8);
    RandomMapper rnd;
    auto cont = ContiguousMapper::plain();
    Rng r1(9), r2(9);
    double rnd_disp = 0.0, cont_disp = 0.0;
    for (int i = 0; i < 20; ++i) {
        rnd_disp += mapping_dispersion(
            f.view(), rnd.map({1, 9}, f.view(), r1)->cores);
        cont_disp += mapping_dispersion(
            f.view(), cont.map({1, 9}, f.view(), r2)->cores);
    }
    EXPECT_GT(rnd_disp, cont_disp * 1.5);
}

TEST(FirstFitMapper, TakesRowMajorPrefix) {
    ViewFixture f(4, 4);
    f.alloc[0] = 0;
    FirstFitMapper mapper;
    Rng rng(1);
    const auto r = mapper.map({1, 3}, f.view(), rng);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->cores, (std::vector<CoreId>{1, 2, 3}));
}

TEST(FirstFitMapper, NulloptWhenFull) {
    ViewFixture f(2, 2);
    for (auto& a : f.alloc) {
        a = 0;
    }
    FirstFitMapper mapper;
    Rng rng(1);
    EXPECT_FALSE(mapper.map({1, 1}, f.view(), rng).has_value());
}

TEST(MappingDispersion, KnownValues) {
    ViewFixture f(4, 4);
    // Cores 0 and 3 in the same row: distance 3.
    EXPECT_DOUBLE_EQ(
        mapping_dispersion(f.view(), std::vector<CoreId>{0, 3}), 3.0);
    // Single core: zero.
    EXPECT_DOUBLE_EQ(mapping_dispersion(f.view(), std::vector<CoreId>{0}),
                     0.0);
    // 2x2 block: mean of {1,1,1,1,2,2} = 8/6.
    EXPECT_NEAR(
        mapping_dispersion(f.view(), std::vector<CoreId>{0, 1, 4, 5}),
        8.0 / 6.0, 1e-12);
}

TEST(MapperValidation, RejectsBadInputs) {
    ViewFixture f(4, 4);
    auto mapper = ContiguousMapper::plain();
    Rng rng(1);
    EXPECT_THROW(mapper.map({1, 0}, f.view(), rng), RequireError);
    PlatformView bad = f.view();
    bad.width = 0;
    EXPECT_THROW(mapper.map({1, 2}, bad, rng), RequireError);
    PlatformView mismatched = f.view();
    mismatched.width = 5;  // alloc mask no longer matches
    EXPECT_THROW(mapper.map({1, 2}, mismatched, rng), RequireError);
}

// Property sweep: every mapper returns valid mappings over random masks.
class MapperProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MapperProperty, ValidOverRandomOccupancy) {
    Rng rng(GetParam());
    ViewFixture f(8, 8);
    for (auto& a : f.alloc) {
        a = rng.bernoulli(0.6) ? 1 : 0;
    }
    for (auto& u : f.util) {
        u = rng.uniform();
    }
    for (auto& c : f.crit) {
        c = rng.uniform(0.0, 2.0);
    }
    std::size_t free_count = 0;
    for (auto a : f.alloc) {
        free_count += a;
    }
    auto plain = ContiguousMapper::plain();
    auto taum = ContiguousMapper::test_aware();
    RandomMapper random;
    FirstFitMapper first_fit;
    for (Mapper* m : std::initializer_list<Mapper*>{&plain, &taum, &random,
                                                    &first_fit}) {
        for (std::size_t n : {1u, 4u, 9u, 16u}) {
            const auto r = m->map({1, n}, f.view(), rng);
            if (n <= free_count) {
                ASSERT_TRUE(r.has_value()) << m->name();
                expect_valid_mapping(*r, f.view(), n);
            } else {
                EXPECT_FALSE(r.has_value()) << m->name();
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MapperProperty,
                         ::testing::Values(1u, 7u, 13u, 99u, 1234u));

}  // namespace
}  // namespace mcs
