// Unit-level tests for the engine seams behind the ManycoreSystem façade:
// the per-round platform-view cache (one chip scan per mapping round), the
// segmented-test abort/resume path under mapping contention, the abort
// backoff filter, and set_priority_blind's interaction with the QoS
// admission queues. These drive WorkloadEngine/TestEngine directly --
// no full-system run() needed except where app completion matters.

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "core/system_observer.hpp"
#include "core/test_engine.hpp"
#include "core/workload_engine.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mcs {
namespace {

// 2x2 chip, no generated arrivals (the rate is vanishingly small), no
// automatic test scheduling -- every event in these tests is injected.
SystemConfig small_cfg() {
    SystemConfig cfg;
    cfg.width = 2;
    cfg.height = 2;
    cfg.scheduler = SchedulerKind::None;
    cfg.mapper = MapperKind::FirstFit;
    cfg.workload.arrival_rate_hz = 1e-6;
    return cfg;
}

ApplicationSpec make_app(std::size_t tasks, std::uint64_t cycles,
                         QosClass qos = QosClass::BestEffort) {
    std::vector<Task> ts(tasks);
    for (Task& t : ts) {
        t.cycles = cycles;
    }
    return ApplicationSpec{0, 0, qos, 0, TaskGraph(std::move(ts))};
}

/// Records the order in which applications get mapped.
struct MapOrderObserver final : SystemObserver {
    std::vector<std::size_t> order;
    void on_app_mapped(SimTime, std::size_t app, CoreId,
                       std::size_t) override {
        order.push_back(app);
    }
    bool wants_trace_samples() const override { return false; }
};

TEST(WorkloadEngineSeams, OneChipScanPerMappingRound) {
    ManycoreSystem sys(small_cfg());
    WorkloadEngine& we = sys.workload_engine();

    // Round 1: an app the size of the chip maps immediately -- one scan.
    const std::size_t a0 = we.inject(make_app(4, 1'000'000));
    we.on_arrival(a0);
    EXPECT_TRUE(we.app_mapped(a0));
    EXPECT_EQ(we.chip_scans(), 1u);
    EXPECT_EQ(we.mapping_attempts(), 1u);

    // Rounds 2 and 3: chip is full, both apps stay queued (one failed
    // attempt each, one scan each).
    const std::size_t a1 = we.inject(make_app(2, 400'000));
    we.on_arrival(a1);
    const std::size_t a2 = we.inject(make_app(2, 400'000));
    we.on_arrival(a2);
    EXPECT_FALSE(we.app_mapped(a1));
    EXPECT_FALSE(we.app_mapped(a2));
    EXPECT_EQ(we.pending_total(), 2u);
    EXPECT_EQ(we.chip_scans(), 3u);
    EXPECT_EQ(we.mapping_attempts(), 3u);

    // a0 finishes during the run; its release round maps BOTH queued apps
    // off a single chip scan (the cache is patched per commit, not
    // rebuilt). Their own completions find empty queues: no further scans.
    sys.run(50 * kMillisecond);
    EXPECT_TRUE(we.app_done(a0));
    EXPECT_TRUE(we.app_done(a1));
    EXPECT_TRUE(we.app_done(a2));
    EXPECT_EQ(we.chip_scans(), 4u);
    EXPECT_EQ(we.mapping_attempts(), 5u);

    // The cacheability invariants the refactor is about: every round that
    // reached the mapper cost exactly one scan, and multi-commit rounds
    // made attempts outnumber scans (pre-refactor: attempts == scans).
    EXPECT_EQ(we.chip_scans(), we.mapping_rounds());
    EXPECT_GT(we.mapping_attempts(), we.chip_scans());
}

TEST(TestEngineSeams, SegmentedAbortResumeAcrossMappingContention) {
    SystemConfig cfg = small_cfg();
    cfg.segmented_tests = true;
    ManycoreSystem sys(cfg);
    TestEngine& te = sys.test_engine();
    WorkloadEngine& we = sys.workload_engine();
    Simulator& sim = sys.simulator();
    const auto routines = sys.suite().routines();
    ASSERT_GT(routines.size(), 2u);

    // Start a segmented session and let exactly one routine finish.
    te.start_test_session(0, 0);
    EXPECT_TRUE(te.test_active(0));
    EXPECT_EQ(te.suite_progress(0), 0u);
    const double f0 = sys.chip().vf_table()[0].freq_hz;
    sim.run_until(duration_for_cycles(routines[0].cycles, f0) + 1);
    EXPECT_TRUE(te.test_active(0));
    EXPECT_EQ(te.suite_progress(0), 1u);

    // Mapping contention: a chip-sized app claims the testing core. The
    // session aborts but the resume point survives.
    const std::size_t a0 = we.inject(make_app(4, 1'000'000));
    we.on_arrival(a0);
    EXPECT_TRUE(we.app_mapped(a0));
    EXPECT_FALSE(te.test_active(0));
    EXPECT_EQ(te.suite_progress(0), 1u);
    EXPECT_EQ(te.last_abort(0), sim.now());

    // Drain the app, then restart the session: it must finish after only
    // the REMAINING routines' cycles -- a restarted-from-scratch suite
    // could not complete before routine 0's cycles have elapsed again.
    sim.run_until(sim.now() + 20 * kMillisecond);
    ASSERT_TRUE(we.app_done(a0));
    te.start_test_session(0, 0);
    EXPECT_EQ(te.suite_progress(0), 1u);
    const SimTime resumed_at = sim.now();
    SimDuration remaining = 0;
    for (std::size_t r = 1; r < routines.size(); ++r) {
        remaining += duration_for_cycles(routines[r].cycles, f0) + 1;
    }
    sim.run_until(resumed_at + remaining);
    EXPECT_FALSE(te.test_active(0));   // completed: resumed, not restarted
    EXPECT_EQ(te.suite_progress(0), 0u);  // wrapped for the next suite
}

TEST(TestEngineSeams, InvalidateProgressDropsResumePoint) {
    SystemConfig cfg = small_cfg();
    cfg.segmented_tests = true;
    ManycoreSystem sys(cfg);
    TestEngine& te = sys.test_engine();
    Simulator& sim = sys.simulator();

    te.start_test_session(1, 0);
    const double f0 = sys.chip().vf_table()[0].freq_hz;
    sim.run_until(
        duration_for_cycles(sys.suite().routines()[0].cycles, f0) + 1);
    te.abort_test(1);
    EXPECT_EQ(te.suite_progress(1), 1u);

    // A fresh fault on the core voids routines run while it was healthy.
    te.invalidate_progress(1);
    EXPECT_EQ(te.suite_progress(1), 0u);
}

TEST(TestEngineSeams, AbortBackoffFiltersCandidates) {
    SystemConfig cfg = small_cfg();
    // Records the candidate set each epoch; shared_ptr so the test keeps a
    // handle while the engine owns a forwarding wrapper.
    struct ProbeScheduler final : TestScheduler {
        std::vector<CoreId> seen;
        void epoch(SchedulerContext& sctx) override {
            seen.clear();
            for (const TestCandidate& c : sctx.candidates) {
                seen.push_back(c.core);
            }
        }
        std::string_view name() const override { return "probe"; }
    };
    auto probe = std::make_shared<ProbeScheduler>();
    cfg.scheduler_factory = [probe]() {
        struct Fwd final : TestScheduler {
            std::shared_ptr<ProbeScheduler> inner;
            explicit Fwd(std::shared_ptr<ProbeScheduler> p)
                : inner(std::move(p)) {}
            void epoch(SchedulerContext& sctx) override {
                inner->epoch(sctx);
            }
            std::string_view name() const override { return inner->name(); }
        };
        return std::unique_ptr<TestScheduler>(new Fwd(probe));
    };
    ManycoreSystem sys(cfg);
    TestEngine& te = sys.test_engine();
    Simulator& sim = sys.simulator();

    // Abort a session at t > 0 (t == 0 is the "never aborted" sentinel).
    sim.schedule_at(1 * kMillisecond, [] {});
    sim.run_until(1 * kMillisecond);
    te.start_test_session(0, 0);
    te.abort_test(0);
    ASSERT_EQ(te.last_abort(0), sim.now());

    // Within the backoff window core 0 is withheld from the scheduler.
    te.test_epoch();
    EXPECT_EQ(probe->seen, (std::vector<CoreId>{1, 2, 3}));

    // Past the window it is offered again.
    const SimTime past = 1 * kMillisecond + sys.config().test_retry_backoff;
    sim.schedule_at(past + 1, [] {});
    sim.run_until(past + 1);
    te.test_epoch();
    EXPECT_EQ(probe->seen, (std::vector<CoreId>{0, 1, 2, 3}));
}

// Differential for the patch-on-commit candidacy view: under a real
// workload plus randomized test-session churn (starts and aborts driven
// from inside the scheduler hook), the candidate set offered to the policy
// every epoch must equal a fresh whole-chip predicate scan, while the
// maintenance counters prove the engine never rescanned after boot.
TEST(TestEngineSeams, PatchedCandidacyMatchesFreshScan) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.mapper = MapperKind::FirstFit;
    cfg.seed = 1234;
    cfg.workload.graphs.min_tasks = 2;
    cfg.workload.graphs.max_tasks = 6;
    const double capacity = 16.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(0.6, cfg.workload.graphs, capacity);

    struct ChurnProbe final : TestScheduler {
        ManycoreSystem* sys = nullptr;
        Rng rng{9001};
        std::size_t checks = 0;
        std::size_t mismatches = 0;
        std::size_t started = 0;
        std::size_t aborted = 0;
        CoreId last_started = kInvalidCore;

        void epoch(SchedulerContext& sctx) override {
            TestEngine& te = sys->test_engine();
            // Fresh whole-chip scan of the published predicate.
            std::vector<CoreId> fresh;
            const SimDuration backoff = sys->config().test_retry_backoff;
            const CoreId n = static_cast<CoreId>(sys->chip().core_count());
            for (CoreId i = 0; i < n; ++i) {
                const Core& c = sys->chip().core(i);
                if (c.reserved()) continue;
                if (c.state() != CoreState::Idle &&
                    c.state() != CoreState::Dark) {
                    continue;
                }
                const SimTime ab = te.last_abort(i);
                if (ab != 0 && sctx.now - ab < backoff) continue;
                fresh.push_back(i);
            }
            std::vector<CoreId> patched;
            for (const TestCandidate& c : sctx.candidates) {
                patched.push_back(c.core);
            }
            ++checks;
            if (patched != fresh) {
                ++mismatches;
            }
            // Randomized churn: sometimes abort the in-flight session,
            // sometimes start one on a random candidate.
            if (last_started != kInvalidCore &&
                te.test_active(last_started) && rng.uniform() < 0.5) {
                te.abort_test(last_started);
                ++aborted;
                last_started = kInvalidCore;
            }
            if (!sctx.candidates.empty() && rng.uniform() < 0.7) {
                const TestCandidate& pick =
                    sctx.candidates[rng.index(sctx.candidates.size())];
                if (!te.test_active(pick.core)) {
                    sctx.start_test(pick.core, 0);
                    ++started;
                    last_started = pick.core;
                }
            }
        }
        std::string_view name() const override { return "churn-probe"; }
    };
    auto probe = std::make_shared<ChurnProbe>();
    cfg.scheduler_factory = [probe]() {
        struct Fwd final : TestScheduler {
            std::shared_ptr<ChurnProbe> inner;
            explicit Fwd(std::shared_ptr<ChurnProbe> p)
                : inner(std::move(p)) {}
            void epoch(SchedulerContext& sctx) override {
                inner->epoch(sctx);
            }
            std::string_view name() const override { return inner->name(); }
        };
        return std::unique_ptr<TestScheduler>(new Fwd(probe));
    };
    ManycoreSystem sys(cfg);
    probe->sys = &sys;
    sys.run(400 * kMillisecond);

    const TestEngine& te = sys.test_engine();
    EXPECT_GT(probe->checks, 10u);
    EXPECT_EQ(probe->mismatches, 0u);
    EXPECT_GT(probe->started, 0u);
    EXPECT_GT(probe->aborted, 0u);  // backoff/cooling path exercised
    // The whole run performed exactly the boot rescan; every epoch after
    // ran on journal patches alone.
    EXPECT_EQ(te.candidacy_rescans(), 1u);
    EXPECT_GT(te.candidacy_patches(), 0u);
}

TEST(WorkloadEngineSeams, QosQueuesServeHardRealTimeFirst) {
    ManycoreSystem sys(small_cfg());
    WorkloadEngine& we = sys.workload_engine();
    MapOrderObserver order;
    sys.add_observer(&order);

    const std::size_t blocker = we.inject(make_app(4, 2'000'000));
    we.on_arrival(blocker);
    const std::size_t be = we.inject(make_app(4, 400'000));
    we.on_arrival(be);
    const std::size_t hr =
        we.inject(make_app(4, 400'000, QosClass::HardRealTime));
    we.on_arrival(hr);

    // Separate class queues: best-effort and hard-RT each hold one app.
    EXPECT_EQ(we.pending_in_class(0), 1u);
    EXPECT_EQ(we.pending_in_class(2), 1u);

    sys.run(50 * kMillisecond);
    // Hard-RT jumped the earlier best-effort arrival at the release round.
    EXPECT_EQ(order.order,
              (std::vector<std::size_t>{blocker, hr, be}));
    EXPECT_EQ(we.priority_of(0), 0);  // idle core carries no priority
}

TEST(WorkloadEngineSeams, PriorityBlindMergesQosQueues) {
    ManycoreSystem sys(small_cfg());
    sys.set_priority_blind(true);
    WorkloadEngine& we = sys.workload_engine();
    MapOrderObserver order;
    sys.add_observer(&order);

    const std::size_t blocker = we.inject(make_app(4, 2'000'000));
    we.on_arrival(blocker);
    const std::size_t be = we.inject(make_app(4, 400'000));
    we.on_arrival(be);
    const std::size_t hr =
        we.inject(make_app(4, 400'000, QosClass::HardRealTime));
    we.on_arrival(hr);

    // Blind admission funnels every class into queue 0, FIFO.
    EXPECT_EQ(we.pending_in_class(0), 2u);
    EXPECT_EQ(we.pending_in_class(2), 0u);

    sys.run(50 * kMillisecond);
    // Arrival order wins: the earlier best-effort app maps first.
    EXPECT_EQ(order.order,
              (std::vector<std::size_t>{blocker, be, hr}));
}

}  // namespace
}  // namespace mcs
