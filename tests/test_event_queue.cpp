#include "sim/event_queue.hpp"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace mcs {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty()) {
        auto [t, cb] = q.pop();
        cb();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        q.schedule(5, [&, i] { order.push_back(i); });
    }
    while (!q.empty()) {
        q.pop().second();
    }
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    }
}

TEST(EventQueue, CancelPreventsExecution) {
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceIsNoop) {
    EventQueue q;
    const EventId id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireIsNoop) {
    EventQueue q;
    const EventId id = q.schedule(10, [] {});
    q.pop().second();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelFiredWhileOthersPendingKeepsCount) {
    EventQueue q;
    const EventId a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    q.pop();  // fires a
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_FALSE(q.cancel(a));  // a already fired
    EXPECT_EQ(q.pending(), 1u);  // count must not be corrupted
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
    EventQueue q;
    EXPECT_FALSE(q.cancel(EventId{}));
    EXPECT_FALSE(q.cancel(EventId{999}));
}

TEST(EventQueue, IsPendingTracksLifecycle) {
    EventQueue q;
    const EventId id = q.schedule(5, [] {});
    EXPECT_TRUE(q.is_pending(id));
    q.pop();
    EXPECT_FALSE(q.is_pending(id));
    const EventId id2 = q.schedule(5, [] {});
    q.cancel(id2);
    EXPECT_FALSE(q.is_pending(id2));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
    EventQueue q;
    const EventId early = q.schedule(1, [] {});
    q.schedule(10, [] {});
    q.cancel(early);
    EXPECT_EQ(q.next_time(), 10u);
}

TEST(EventQueue, EmptyAccessorsThrow) {
    EventQueue q;
    EXPECT_THROW(q.pop(), RequireError);
    EXPECT_THROW(q.next_time(), RequireError);
}

TEST(EventQueue, NullCallbackRejected) {
    EventQueue q;
    EXPECT_THROW(q.schedule(1, EventQueue::Callback{}), RequireError);
}

TEST(EventQueue, PendingCountTracksScheduleAndCancel) {
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i) {
        ids.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
    }
    EXPECT_EQ(q.pending(), 100u);
    for (int i = 0; i < 50; ++i) {
        q.cancel(ids[static_cast<std::size_t>(2 * i)]);
    }
    EXPECT_EQ(q.pending(), 50u);
    int fired = 0;
    while (!q.empty()) {
        q.pop();
        ++fired;
    }
    EXPECT_EQ(fired, 50);
}

// Property test: random schedule/cancel/pop sequences match a reference
// model (multimap ordered by (time, seq)).
class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
    Rng rng(GetParam());
    EventQueue q;
    // Reference: (time, seq) -> alive.
    std::map<std::pair<SimTime, std::uint64_t>, bool> model;
    std::vector<std::pair<EventId, std::pair<SimTime, std::uint64_t>>> handles;
    std::uint64_t seq = 0;
    SimTime clock = 0;
    for (int step = 0; step < 3000; ++step) {
        const double action = rng.uniform();
        if (action < 0.5) {
            const SimTime t = clock + rng.uniform_int(0, 1000);
            const EventId id = q.schedule(t, [] {});
            model[{t, ++seq}] = true;
            handles.push_back({id, {t, seq}});
        } else if (action < 0.7 && !handles.empty()) {
            const auto& h = handles[rng.index(handles.size())];
            const bool q_did = q.cancel(h.first);
            auto it = model.find(h.second);
            const bool model_did = it != model.end() && it->second;
            EXPECT_EQ(q_did, model_did);
            if (model_did) {
                it->second = false;
            }
        } else if (!q.empty()) {
            // Pop the earliest; reference must agree on the timestamp.
            auto alive = model.begin();
            while (alive != model.end() && !alive->second) {
                ++alive;
            }
            ASSERT_NE(alive, model.end());
            const auto [t, cb] = q.pop();
            EXPECT_EQ(t, alive->first.first);
            EXPECT_GE(t, clock);
            clock = t;
            alive->second = false;
        }
        // Erase dead prefix from the model to mirror q's ground truth size.
        std::size_t model_alive = 0;
        for (const auto& [k, alive_flag] : model) {
            model_alive += alive_flag ? 1 : 0;
        }
        ASSERT_EQ(q.pending(), model_alive);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

}  // namespace
}  // namespace mcs
