#include "sim/event_queue.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "util/require.hpp"
#include "util/rng.hpp"

namespace mcs {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    while (!q.empty()) {
        auto [t, cb] = q.pop();
        cb();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakFifo) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i) {
        q.schedule(5, [&, i] { order.push_back(i); });
    }
    while (!q.empty()) {
        q.pop().second();
    }
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
    }
}

TEST(EventQueue, CancelPreventsExecution) {
    EventQueue q;
    bool fired = false;
    const EventId id = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(id));
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceIsNoop) {
    EventQueue q;
    const EventId id = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterFireIsNoop) {
    EventQueue q;
    const EventId id = q.schedule(10, [] {});
    q.pop().second();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelFiredWhileOthersPendingKeepsCount) {
    EventQueue q;
    const EventId a = q.schedule(1, [] {});
    q.schedule(2, [] {});
    q.pop();  // fires a
    EXPECT_EQ(q.pending(), 1u);
    EXPECT_FALSE(q.cancel(a));  // a already fired
    EXPECT_EQ(q.pending(), 1u);  // count must not be corrupted
}

TEST(EventQueue, CancelInvalidIdIsNoop) {
    EventQueue q;
    EXPECT_FALSE(q.cancel(EventId{}));
    EXPECT_FALSE(q.cancel(EventId{999}));
}

TEST(EventQueue, IsPendingTracksLifecycle) {
    EventQueue q;
    const EventId id = q.schedule(5, [] {});
    EXPECT_TRUE(q.is_pending(id));
    q.pop();
    EXPECT_FALSE(q.is_pending(id));
    const EventId id2 = q.schedule(5, [] {});
    q.cancel(id2);
    EXPECT_FALSE(q.is_pending(id2));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
    EventQueue q;
    const EventId early = q.schedule(1, [] {});
    q.schedule(10, [] {});
    q.cancel(early);
    EXPECT_EQ(q.next_time(), 10u);
}

TEST(EventQueue, EmptyAccessorsThrow) {
    EventQueue q;
    EXPECT_THROW(q.pop(), RequireError);
    EXPECT_THROW(q.next_time(), RequireError);
}

TEST(EventQueue, NullCallbackRejected) {
    EventQueue q;
    EXPECT_THROW(q.schedule(1, EventQueue::Callback{}), RequireError);
}

TEST(EventQueue, PendingCountTracksScheduleAndCancel) {
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 100; ++i) {
        ids.push_back(q.schedule(static_cast<SimTime>(i), [] {}));
    }
    EXPECT_EQ(q.pending(), 100u);
    for (int i = 0; i < 50; ++i) {
        q.cancel(ids[static_cast<std::size_t>(2 * i)]);
    }
    EXPECT_EQ(q.pending(), 50u);
    int fired = 0;
    while (!q.empty()) {
        q.pop();
        ++fired;
    }
    EXPECT_EQ(fired, 50);
}

// Property test: random schedule/cancel/pop sequences match a reference
// model (multimap ordered by (time, seq)).
class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
    Rng rng(GetParam());
    EventQueue q;
    // Reference: (time, seq) -> alive.
    std::map<std::pair<SimTime, std::uint64_t>, bool> model;
    std::vector<std::pair<EventId, std::pair<SimTime, std::uint64_t>>> handles;
    std::uint64_t seq = 0;
    SimTime clock = 0;
    for (int step = 0; step < 3000; ++step) {
        const double action = rng.uniform();
        if (action < 0.5) {
            const SimTime t = clock + rng.uniform_int(0, 1000);
            const EventId id = q.schedule(t, [] {});
            model[{t, ++seq}] = true;
            handles.push_back({id, {t, seq}});
        } else if (action < 0.7 && !handles.empty()) {
            const auto& h = handles[rng.index(handles.size())];
            const bool q_did = q.cancel(h.first);
            auto it = model.find(h.second);
            const bool model_did = it != model.end() && it->second;
            EXPECT_EQ(q_did, model_did);
            if (model_did) {
                it->second = false;
            }
        } else if (!q.empty()) {
            // Pop the earliest; reference must agree on the timestamp.
            auto alive = model.begin();
            while (alive != model.end() && !alive->second) {
                ++alive;
            }
            ASSERT_NE(alive, model.end());
            const auto [t, cb] = q.pop();
            EXPECT_EQ(t, alive->first.first);
            EXPECT_GE(t, clock);
            clock = t;
            alive->second = false;
        }
        // Erase dead prefix from the model to mirror q's ground truth size.
        std::size_t model_alive = 0;
        for (const auto& [k, alive_flag] : model) {
            model_alive += alive_flag ? 1 : 0;
        }
        ASSERT_EQ(q.pending(), model_alive);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u));

TEST(EventQueue, CancelReclaimsStorageEagerly) {
    EventQueue q;
    std::vector<EventId> ids;
    for (int i = 0; i < 2000; ++i) {
        ids.push_back(q.schedule(static_cast<SimTime>(100 + i % 7), [] {}));
    }
    for (int i = 0; i < 2000; i += 2) {
        q.cancel(ids[static_cast<std::size_t>(i)]);
    }
    // The old heap kept cancelled entries until they surfaced; the calendar
    // queue reclaims the slot inside cancel() itself.
    EXPECT_EQ(q.stored_entries(), q.pending());
    EXPECT_EQ(q.pending(), 1000u);
    EXPECT_EQ(q.cancelled_count(), 1000u);
    while (!q.empty()) {
        q.pop();
        EXPECT_EQ(q.stored_entries(), q.pending());
    }
}

TEST(EventQueue, CancelledCountRestores) {
    EventQueue q;
    q.cancel(q.schedule(5, [] {}));
    EXPECT_EQ(q.cancelled_count(), 1u);
    q.restore_cancelled_count(42);
    EXPECT_EQ(q.cancelled_count(), 42u);
    q.cancel(q.schedule(6, [] {}));
    EXPECT_EQ(q.cancelled_count(), 43u);
}

// Determinism property test: randomized schedule/cancel interleavings at
// epoch-quantized timestamps (many equal-time ties), then the FULL pop
// order -- including FIFO order within a timestamp, witnessed by payload
// identity -- must match a reference heap model ordered by (when, seq).
class EventQueueDeterminism
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueDeterminism, PopOrderMatchesReferenceHeap) {
    Rng rng(GetParam());
    constexpr SimTime kEpoch = 1000;  // quantum: forces heavy tie-breaking
    EventQueue q;
    std::vector<int> popped;
    // Reference model: (when, seq) -> payload, std::map iteration order is
    // exactly the strict (when, seq) pop order the queue promises.
    std::map<std::pair<SimTime, std::uint64_t>, int> model;
    std::vector<std::pair<EventId, std::pair<SimTime, std::uint64_t>>> live;
    SimTime clock = 0;
    int payload = 0;
    for (int step = 0; step < 4000; ++step) {
        const double action = rng.uniform();
        if (action < 0.55) {
            // Epoch-quantized: land on one of the next few epoch marks.
            const SimTime t =
                (clock / kEpoch + 1 + rng.uniform_int(0, 4)) * kEpoch;
            const int p = payload++;
            const std::uint64_t seq = q.next_seq();
            const EventId id = q.schedule(t, [&popped, p] {
                popped.push_back(p);
            });
            EXPECT_EQ(id.seq, seq);  // next_seq() predicted the assignment
            model[{t, seq}] = p;
            live.push_back({id, {t, seq}});
        } else if (action < 0.75 && !live.empty()) {
            const std::size_t pick = rng.index(live.size());
            const auto [id, key] = live[pick];
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
            EXPECT_TRUE(q.cancel(id));
            model.erase(key);
        } else if (!q.empty()) {
            auto ref = model.begin();
            const auto [t, cb] = q.pop();
            ASSERT_EQ(t, ref->first.first);
            cb();
            ASSERT_FALSE(popped.empty());
            // Payload identity proves FIFO within the shared timestamp.
            ASSERT_EQ(popped.back(), ref->second);
            clock = t;
            model.erase(ref);
            std::erase_if(live, [&](const auto& h) {
                return !q.is_pending(h.first);
            });
        }
        ASSERT_EQ(q.pending(), model.size());
        ASSERT_EQ(q.stored_entries(), model.size());
    }
    // Drain: the remaining pop order must equal the model's key order.
    while (!q.empty()) {
        auto ref = model.begin();
        const auto [t, cb] = q.pop();
        ASSERT_EQ(t, ref->first.first);
        cb();
        ASSERT_EQ(popped.back(), ref->second);
        model.erase(ref);
    }
    EXPECT_TRUE(model.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueDeterminism,
                         ::testing::Values(7u, 99u, 2026u, 31337u));

// Snapshot-style rebuild: replaying the pending manifest in ascending
// captured-seq order into a fresh queue (fresh seqs) preserves the pop
// order, and next_seq() advances contiguously -- the contract the snapshot
// restore path (core/snapshot.cpp) relies on.
TEST(EventQueue, ManifestReplayPreservesOrderAndSeqContinuity) {
    Rng rng(77);
    EventQueue q;
    std::vector<std::pair<EventId, int>> handles;
    int payload = 0;
    for (int i = 0; i < 500; ++i) {
        const SimTime t = (1 + rng.uniform_int(0, 19)) * 1000;
        const int p = payload++;
        handles.push_back({q.schedule(t, [p] {}), p});
    }
    for (int i = 0; i < 500; i += 3) {
        q.cancel(handles[static_cast<std::size_t>(i)].first);
    }
    for (int i = 0; i < 100 && !q.empty(); ++i) {
        q.pop();
    }
    // Capture the manifest: pending events in ascending seq order (handles
    // were pushed in schedule order, i.e. ascending seq).
    std::vector<std::pair<SimTime, std::uint64_t>> manifest;
    for (const auto& [id, p] : handles) {
        if (q.is_pending(id)) {
            manifest.push_back({q.time_of(id), id.seq});
        }
    }
    // Replay into a fresh queue; restored seqs are fresh but ascending in
    // captured-seq order, so the (when, seq) pop order is preserved.
    EventQueue restored;
    std::uint64_t expect_seq = restored.next_seq();
    for (const auto& [when, old_seq] : manifest) {
        const EventId id = restored.schedule(when, [] {});
        EXPECT_EQ(id.seq, expect_seq);  // contiguous assignment
        ++expect_seq;
    }
    EXPECT_EQ(restored.next_seq(), expect_seq);
    EXPECT_EQ(restored.pending(), manifest.size());
    // Both queues drain in the same (when, original capture order).
    std::size_t at = 0;
    std::sort(manifest.begin(), manifest.end());
    while (!q.empty()) {
        const SimTime t_old = q.pop().first;
        const SimTime t_new = restored.pop().first;
        ASSERT_EQ(t_old, t_new);
        ASSERT_EQ(t_old, manifest[at].first);
        ++at;
    }
    EXPECT_TRUE(restored.empty());
}

// Threshold stress: drive the population across grow/shrink boundaries and
// verify pop order stays strict (when, seq) throughout.
TEST(EventQueue, ResizeThresholdsPreserveOrder) {
    Rng rng(5150);
    EventQueue q;
    std::map<std::pair<SimTime, std::uint64_t>, bool> model;
    const std::size_t boot_buckets = q.bucket_count();
    // Grow phase: push far past the boot capacity.
    for (int i = 0; i < 5000; ++i) {
        const SimTime t = (1 + rng.uniform_int(0, 99)) * 500;
        const EventId id = q.schedule(t, [] {});
        model[{t, id.seq}] = true;
    }
    EXPECT_GT(q.bucket_count(), boot_buckets);
    // Shrink phase: drain most of it back down.
    SimTime last = 0;
    std::uint64_t last_seq = 0;
    for (int i = 0; i < 4900; ++i) {
        auto ref = model.begin();
        const auto [t, cb] = q.pop();
        ASSERT_EQ(t, ref->first.first);
        ASSERT_TRUE(t > last || (t == last && ref->first.second > last_seq));
        last = t;
        last_seq = ref->first.second;
        model.erase(ref);
    }
    EXPECT_LT(q.bucket_count(), 5000u);
    while (!q.empty()) {
        auto ref = model.begin();
        ASSERT_EQ(q.pop().first, ref->first.first);
        model.erase(ref);
    }
}

}  // namespace
}  // namespace mcs
