#include "core/system.hpp"

#include <numeric>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

/// Small, fast configuration used by most integration tests: 4x4 chip,
/// moderate load, 2-second horizon (runs in tens of milliseconds).
SystemConfig small_config(std::uint64_t seed = 42) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = seed;
    cfg.workload.graphs.min_tasks = 2;
    cfg.workload.graphs.max_tasks = 6;
    const double capacity = 16.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(0.5, cfg.workload.graphs, capacity);
    return cfg;
}

TEST(System, AppsFlowThrough) {
    ManycoreSystem sys(small_config());
    const RunMetrics m = sys.run(2 * kSecond);
    EXPECT_GT(m.apps_arrived, 50u);
    EXPECT_GT(m.apps_completed, m.apps_arrived * 9 / 10);
    EXPECT_GT(m.tasks_completed, m.apps_completed);
    EXPECT_GT(m.throughput_tasks_per_s, 0.0);
    EXPECT_GT(m.work_cycles_per_s, 0.0);
    EXPECT_EQ(m.sim_time, 2 * kSecond);
    EXPECT_EQ(m.core_count, 16u);
}

TEST(System, RunTwiceRejected) {
    ManycoreSystem sys(small_config());
    sys.run(100 * kMillisecond);
    EXPECT_THROW(sys.run(100 * kMillisecond), RequireError);
    EXPECT_THROW(ManycoreSystem(small_config()).run(0), RequireError);
}

TEST(System, DeterministicBySeed) {
    auto run = [](std::uint64_t seed) {
        ManycoreSystem sys(small_config(seed));
        return sys.run(kSecond);
    };
    const RunMetrics a = run(7);
    const RunMetrics b = run(7);
    const RunMetrics c = run(8);
    EXPECT_EQ(a.apps_completed, b.apps_completed);
    EXPECT_EQ(a.tasks_completed, b.tasks_completed);
    EXPECT_EQ(a.tests_completed, b.tests_completed);
    EXPECT_DOUBLE_EQ(a.mean_power_w, b.mean_power_w);
    EXPECT_DOUBLE_EQ(a.energy_total_j, b.energy_total_j);
    // Different seed gives a different trajectory.
    EXPECT_NE(a.tasks_completed, c.tasks_completed);
}

TEST(System, PowerAwareTestingHonorsTdp) {
    SystemConfig cfg = small_config();
    cfg.scheduler = SchedulerKind::PowerAware;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(2 * kSecond);
    EXPECT_GT(m.tests_completed, 0u);
    EXPECT_LE(m.max_power_w, m.tdp_w * 1.02);
    EXPECT_EQ(m.tdp_violations, 0u);
}

TEST(System, NullSchedulerNeverTests) {
    SystemConfig cfg = small_config();
    cfg.scheduler = SchedulerKind::None;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(kSecond);
    EXPECT_EQ(m.tests_completed, 0u);
    EXPECT_EQ(m.tests_aborted, 0u);
    EXPECT_DOUBLE_EQ(m.test_energy_share, 0.0);
    EXPECT_DOUBLE_EQ(m.untested_core_fraction, 1.0);
}

TEST(System, ThroughputPenaltyOfTestingIsSmall) {
    SystemConfig base = small_config();
    base.scheduler = SchedulerKind::None;
    const RunMetrics none = ManycoreSystem(base).run(3 * kSecond);
    SystemConfig pa = small_config();
    pa.scheduler = SchedulerKind::PowerAware;
    const RunMetrics tested = ManycoreSystem(pa).run(3 * kSecond);
    EXPECT_GT(tested.tests_completed, 0u);
    const double penalty =
        (none.work_cycles_per_s - tested.work_cycles_per_s) /
        none.work_cycles_per_s;
    EXPECT_LT(penalty, 0.03);  // headline claim band (paper: < 1%)
}

TEST(System, EveryCoreGetsTestedUnderPowerAware) {
    SystemConfig cfg = small_config();
    cfg.scheduler = SchedulerKind::PowerAware;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(4 * kSecond);
    EXPECT_DOUBLE_EQ(m.untested_core_fraction, 0.0);
    EXPECT_GT(m.test_interval_s.count(), 0u);
    EXPECT_LT(m.max_open_test_gap_s, 4.0);
}

TEST(System, VfRotationCoversLevels) {
    SystemConfig cfg = small_config();
    cfg.scheduler = SchedulerKind::PowerAware;
    cfg.power_aware.vf_policy = TestVfPolicy::RotateAll;
    // Light load and a long horizon: the rotation only reaches the bottom
    // level on each core's 5th test, and sessions there run ~12x longer
    // than at the top level, needing an uncontended window to *complete*
    // (the histogram counts completions).
    cfg.workload.arrival_rate_hz /= 3.0;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(16 * kSecond);
    ASSERT_EQ(m.tests_per_vf_level.size(), sys.chip().vf_level_count());
    int levels_used = 0;
    for (auto count : m.tests_per_vf_level) {
        levels_used += count > 0 ? 1 : 0;
    }
    EXPECT_EQ(levels_used, static_cast<int>(m.tests_per_vf_level.size()));
    // The histogram counts completed suites per level.
    const std::uint64_t histogram_total = std::accumulate(
        m.tests_per_vf_level.begin(), m.tests_per_vf_level.end(), 0ull);
    EXPECT_EQ(histogram_total, m.tests_completed);
}

TEST(System, MaxOnlyPolicyUsesTopLevelOnly) {
    SystemConfig cfg = small_config();
    cfg.power_aware.vf_policy = TestVfPolicy::MaxOnly;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(2 * kSecond);
    for (std::size_t l = 0; l + 1 < m.tests_per_vf_level.size(); ++l) {
        EXPECT_EQ(m.tests_per_vf_level[l], 0u);
    }
    EXPECT_GT(m.tests_per_vf_level.back(), 0u);
}

TEST(System, FaultsDetectedEndToEnd) {
    SystemConfig cfg = small_config();
    cfg.enable_fault_injection = true;
    cfg.faults.base_rate_per_core_s = 0.2;  // aggressive for a short run
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(4 * kSecond);
    EXPECT_GT(m.faults_injected, 0u);
    EXPECT_GT(m.faults_detected, 0u);
    EXPECT_GT(m.detection_latency_s.count(), 0u);
    EXPECT_GT(m.detection_latency_s.mean(), 0.0);
    // Detected cores are decommissioned.
    std::size_t faulty = 0;
    for (const Core& c : sys.chip().cores()) {
        faulty += c.state() == CoreState::Faulty ? 1 : 0;
    }
    EXPECT_EQ(faulty, m.faults_detected);
}

TEST(System, NoTestingMeansNoDetection) {
    SystemConfig cfg = small_config();
    cfg.scheduler = SchedulerKind::None;
    cfg.enable_fault_injection = true;
    // Aggressive sim-scale rate: most cores are dark (immune) at this load,
    // so the effective exposure is only a few core-seconds.
    cfg.faults.base_rate_per_core_s = 2.0;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(3 * kSecond);
    EXPECT_GT(m.faults_injected, 0u);
    EXPECT_EQ(m.faults_detected, 0u);
    EXPECT_GT(m.corrupted_tasks, 0u);  // silent corruption accumulates
}

TEST(System, EnergyAccountingConsistent) {
    ManycoreSystem sys(small_config());
    const RunMetrics m = sys.run(kSecond);
    EXPECT_GT(m.energy_total_j, 0.0);
    EXPECT_NEAR(m.energy_total_j,
                m.energy_busy_j + m.energy_test_j + m.energy_idle_j +
                    m.energy_noc_j,
                1e-9);
    // Mean power and accumulated energy must agree to first order.
    EXPECT_NEAR(m.energy_total_j, m.mean_power_w * to_seconds(m.sim_time),
                m.energy_total_j * 0.05);
}

TEST(System, TraceSinkReceivesSamples) {
    SystemConfig cfg = small_config();
    cfg.trace_epoch = 10 * kMillisecond;
    ManycoreSystem sys(cfg);
    std::vector<TraceSample> samples;
    sys.set_trace_sink([&](const TraceSample& s) { samples.push_back(s); });
    sys.run(kSecond);
    ASSERT_EQ(samples.size(), 100u);
    for (const auto& s : samples) {
        EXPECT_GT(s.total_power_w, 0.0);
        EXPECT_NEAR(s.total_power_w,
                    s.workload_power_w + s.test_power_w + s.other_power_w,
                    1e-9);
        EXPECT_DOUBLE_EQ(s.tdp_w, sys.budget().tdp_w());
        EXPECT_GE(s.max_temp_c, 0.0);
    }
}

TEST(System, NocCarriesTraffic) {
    ManycoreSystem sys(small_config());
    const RunMetrics m = sys.run(kSecond);
    EXPECT_GT(m.noc_messages, 0u);
    EXPECT_GT(m.energy_noc_j, 0.0);
    EXPECT_GE(m.noc_peak_utilization, m.noc_mean_utilization);
}

TEST(System, TdpScaleShrinksBudget) {
    SystemConfig cfg = small_config();
    cfg.tdp_scale = 0.5;
    ManycoreSystem sys(cfg);
    SystemConfig ref = small_config();
    ManycoreSystem refsys(ref);
    EXPECT_NEAR(sys.budget().tdp_w(), refsys.budget().tdp_w() * 0.5, 1e-9);
}

TEST(System, DarkSiliconAppears) {
    // At low load most cores must be power-gated most of the time.
    SystemConfig cfg = small_config();
    cfg.workload.arrival_rate_hz = 5.0;
    ManycoreSystem sys(cfg);
    std::vector<TraceSample> samples;
    sys.set_trace_sink([&](const TraceSample& s) { samples.push_back(s); });
    sys.run(2 * kSecond);
    double dark = 0.0;
    for (const auto& s : samples) {
        dark += s.cores_dark;
    }
    dark /= static_cast<double>(samples.size());
    EXPECT_GT(dark, 4.0);  // of 16 cores
}

TEST(System, AgingAccumulatesAndIsImbalanced) {
    ManycoreSystem sys(small_config());
    const RunMetrics m = sys.run(2 * kSecond);
    EXPECT_GT(m.mean_damage, 0.0);
    EXPECT_GE(m.max_damage, m.mean_damage);
    EXPECT_GE(m.damage_imbalance, 0.0);
}

TEST(System, QueueWaitTrackedUnderOverload) {
    SystemConfig cfg = small_config();
    const double capacity = 16.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(3.0, cfg.workload.graphs, capacity);  // overload
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(kSecond);
    EXPECT_GT(m.apps_rejected, 0u);  // backlog at horizon
    EXPECT_GT(m.app_queue_wait_ms.max(), 0.0);
}

class SystemMapperSweep : public ::testing::TestWithParam<MapperKind> {};

TEST_P(SystemMapperSweep, AllMappersRunCleanly) {
    SystemConfig cfg = small_config();
    cfg.mapper = GetParam();
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(kSecond);
    EXPECT_GT(m.apps_completed, 0u);
    EXPECT_GT(m.mapping_dispersion_hops.count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Mappers, SystemMapperSweep,
    ::testing::Values(MapperKind::TestAware, MapperKind::ThermalAware,
                      MapperKind::UtilizationOriented,
                      MapperKind::Contiguous, MapperKind::Random,
                      MapperKind::FirstFit));

class SystemSchedulerSweep : public ::testing::TestWithParam<SchedulerKind> {
};

TEST_P(SystemSchedulerSweep, AllSchedulersRunCleanly) {
    SystemConfig cfg = small_config();
    cfg.scheduler = GetParam();
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(2 * kSecond);
    EXPECT_GT(m.apps_completed, 0u);
    if (GetParam() != SchedulerKind::None) {
        EXPECT_GT(m.tests_completed, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SystemSchedulerSweep,
                         ::testing::Values(SchedulerKind::PowerAware,
                                           SchedulerKind::Periodic,
                                           SchedulerKind::Greedy,
                                           SchedulerKind::None));

TEST(System, SegmentedTestsCompleteAndResume) {
    SystemConfig cfg = small_config(31);
    cfg.segmented_tests = true;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(3 * kSecond);
    EXPECT_GT(m.tests_completed, 0u);
    EXPECT_DOUBLE_EQ(m.untested_core_fraction, 0.0);
    // The 4x4 chip's absolute PID margin is thin (~0.2 W), so allow a
    // stray marginal sample but no systematic violation.
    EXPECT_LE(m.tdp_violation_rate, 0.001);
    EXPECT_LT(m.worst_overshoot_w, 0.5);
}

TEST(System, SegmentedTestsDeterministic) {
    auto run = [] {
        SystemConfig cfg = small_config(33);
        cfg.segmented_tests = true;
        ManycoreSystem sys(cfg);
        return sys.run(2 * kSecond);
    };
    const RunMetrics a = run();
    const RunMetrics b = run();
    EXPECT_EQ(a.tests_completed, b.tests_completed);
    EXPECT_EQ(a.tests_aborted, b.tests_aborted);
    EXPECT_EQ(a.tasks_completed, b.tasks_completed);
}

TEST(System, AtomicTestsNeverAborted) {
    SystemConfig cfg = small_config(35);
    cfg.abort_tests_for_mapping = false;
    const double capacity = 16.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(1.0, cfg.workload.graphs, capacity);
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(3 * kSecond);
    EXPECT_EQ(m.tests_aborted, 0u);
    EXPECT_GT(m.tests_completed, 0u);
    EXPECT_GT(m.apps_completed, 0u);
}

TEST(System, KindNames) {
    EXPECT_STREQ(to_string(SchedulerKind::PowerAware), "power-aware");
    EXPECT_STREQ(to_string(SchedulerKind::None), "none");
    EXPECT_STREQ(to_string(MapperKind::TestAware), "test-aware (TAUM)");
    EXPECT_STREQ(to_string(MapperKind::Random), "random");
}

TEST(RateForOccupancy, ScalesLinearly) {
    TaskGraphGenParams graphs;
    const double r1 = rate_for_occupancy(0.3, graphs, 1e11);
    const double r2 = rate_for_occupancy(0.6, graphs, 1e11);
    EXPECT_NEAR(r2 / r1, 2.0, 1e-9);
    EXPECT_THROW(rate_for_occupancy(0.0, graphs, 1e11), RequireError);
    EXPECT_THROW(rate_for_occupancy(0.5, graphs, 0.0), RequireError);
}

}  // namespace
}  // namespace mcs
