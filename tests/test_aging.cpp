#include "aging/aging_model.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

class AgingTest : public ::testing::Test {
protected:
    AgingTest() : chip_(2, 2, TechNode::nm16), tracker_(4) {}

    Chip chip_;
    AgingTracker tracker_;
    std::vector<double> ref_temps_{60.0, 60.0, 60.0, 60.0};
};

TEST_F(AgingTest, StartsPristine) {
    EXPECT_DOUBLE_EQ(tracker_.max_damage(), 0.0);
    EXPECT_DOUBLE_EQ(tracker_.mean_damage(), 0.0);
    EXPECT_DOUBLE_EQ(tracker_.fault_acceleration(0), 1.0);
}

TEST_F(AgingTest, BusyAgesFasterThanIdle) {
    chip_.core(0).start_task(0);
    tracker_.update(0, chip_, ref_temps_);
    tracker_.update(seconds(10), chip_, ref_temps_);
    EXPECT_GT(tracker_.damage(0), tracker_.damage(1));
    EXPECT_GT(tracker_.damage(1), 0.0);  // idle still ages slowly
}

TEST_F(AgingTest, DarkCoresDoNotAge) {
    chip_.core(2).power_gate(0);
    tracker_.update(0, chip_, ref_temps_);
    tracker_.update(seconds(10), chip_, ref_temps_);
    EXPECT_DOUBLE_EQ(tracker_.damage(2), 0.0);
    EXPECT_GT(tracker_.damage(0), 0.0);
}

TEST_F(AgingTest, TemperatureAccelerates) {
    AgingParams p;
    AgingTracker a(1, p), b(1, p);
    Chip small(1, 1, TechNode::nm16);
    small.core(0).start_task(0);
    std::vector<double> cool{p.ref_temp_c};
    std::vector<double> hot{p.ref_temp_c + p.temp_accel_slope_c};
    a.update(0, small, cool);
    a.update(seconds(1), small, cool);
    b.update(0, small, hot);
    b.update(seconds(1), small, hot);
    EXPECT_NEAR(b.damage(0) / a.damage(0), std::exp(1.0), 1e-9);
}

TEST_F(AgingTest, BusyDamageRateMatchesLifetime) {
    AgingParams p;
    const double rate = tracker_.damage_rate_per_s(CoreState::Busy,
                                                   p.ref_temp_c);
    EXPECT_NEAR(rate * p.nominal_lifetime_s, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(
        tracker_.damage_rate_per_s(CoreState::Dark, p.ref_temp_c), 0.0);
    EXPECT_DOUBLE_EQ(
        tracker_.damage_rate_per_s(CoreState::Faulty, p.ref_temp_c), 0.0);
    EXPECT_LT(tracker_.damage_rate_per_s(CoreState::Testing, p.ref_temp_c),
              rate);
}

TEST_F(AgingTest, FirstUpdateOnlyAnchorsClock) {
    tracker_.update(seconds(5), chip_, ref_temps_);
    EXPECT_DOUBLE_EQ(tracker_.max_damage(), 0.0);
}

TEST_F(AgingTest, UpdateRejectsBackwardsTime) {
    tracker_.update(seconds(5), chip_, ref_temps_);
    EXPECT_THROW(tracker_.update(seconds(4), chip_, ref_temps_),
                 RequireError);
}

TEST_F(AgingTest, EmptyTempsUseReference) {
    chip_.core(0).start_task(0);
    tracker_.update(0, chip_, {});
    tracker_.update(seconds(1), chip_, {});
    AgingParams p;
    EXPECT_NEAR(tracker_.damage(0), 1.0 / p.nominal_lifetime_s, 1e-15);
}

TEST_F(AgingTest, FaultAccelerationGrowsWithDamage) {
    chip_.core(0).start_task(0);
    tracker_.update(0, chip_, ref_temps_);
    tracker_.update(seconds(100), chip_, ref_temps_);
    EXPECT_GT(tracker_.fault_acceleration(0), tracker_.fault_acceleration(1));
    EXPECT_GE(tracker_.fault_acceleration(1), 1.0);
}

TEST_F(AgingTest, MeanAndMax) {
    chip_.core(0).start_task(0);
    tracker_.update(0, chip_, ref_temps_);
    tracker_.update(seconds(10), chip_, ref_temps_);
    EXPECT_DOUBLE_EQ(tracker_.max_damage(), tracker_.damage(0));
    EXPECT_LT(tracker_.mean_damage(), tracker_.max_damage());
    EXPECT_GT(tracker_.mean_damage(), 0.0);
}

TEST_F(AgingTest, SizeMismatchThrows) {
    AgingTracker wrong(3);
    // chip_ has 4 cores but tracker has 3: rejected immediately.
    EXPECT_THROW(wrong.update(0, chip_, ref_temps_), RequireError);
}

TEST(AgingParamsValidation, Rejected) {
    AgingParams p;
    p.nominal_lifetime_s = 0.0;
    EXPECT_THROW(AgingTracker(4, p), RequireError);
    p = AgingParams{};
    p.temp_accel_slope_c = 0.0;
    EXPECT_THROW(AgingTracker(4, p), RequireError);
    EXPECT_THROW(AgingTracker(0), RequireError);
}

}  // namespace
}  // namespace mcs
