#include "noc/topology.hpp"

#include <set>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

TEST(Topology, LinkCountFormula) {
    MeshTopology t(4, 3);
    // 2*(W-1)*H + 2*W*(H-1) = 2*3*3 + 2*4*2 = 18 + 16 = 34
    EXPECT_EQ(t.link_count(), 34u);
    EXPECT_EQ(t.node_count(), 12u);
}

TEST(Topology, DegenerateMeshes) {
    MeshTopology row(5, 1);
    EXPECT_EQ(row.link_count(), 8u);  // 2*(W-1)
    MeshTopology col(1, 5);
    EXPECT_EQ(col.link_count(), 8u);
    MeshTopology single(1, 1);
    EXPECT_EQ(single.link_count(), 0u);
}

TEST(Topology, LinkBetweenAllDirections) {
    MeshTopology t(3, 3);
    const CoreId center = t.node_at(1, 1);
    std::set<LinkId> ids;
    for (const CoreId n : {t.node_at(0, 1), t.node_at(2, 1), t.node_at(1, 0),
                           t.node_at(1, 2)}) {
        const LinkId out = t.link_between(center, n);
        const LinkId back = t.link_between(n, center);
        EXPECT_NE(out, back);  // directed links
        ids.insert(out);
        ids.insert(back);
    }
    EXPECT_EQ(ids.size(), 8u);  // all distinct
}

TEST(Topology, LinkBetweenRejectsNonAdjacent) {
    MeshTopology t(4, 4);
    EXPECT_THROW(t.link_between(t.node_at(0, 0), t.node_at(2, 0)),
                 RequireError);
    EXPECT_THROW(t.link_between(t.node_at(0, 0), t.node_at(1, 1)),
                 RequireError);
    EXPECT_THROW(t.link_between(t.node_at(0, 0), t.node_at(0, 0)),
                 RequireError);
}

TEST(Topology, LinkEndsRoundTripsEveryLink) {
    MeshTopology t(5, 4);
    std::set<std::pair<CoreId, CoreId>> seen;
    for (LinkId l = 0; l < t.link_count(); ++l) {
        const auto [from, to] = t.link_ends(l);
        EXPECT_EQ(t.manhattan(from, to), 1);
        EXPECT_EQ(t.link_between(from, to), l);
        EXPECT_TRUE(seen.insert({from, to}).second) << "duplicate link";
    }
    EXPECT_THROW(t.link_ends(static_cast<LinkId>(t.link_count())),
                 RequireError);
}

TEST(Topology, XyRouteGoesXFirst) {
    MeshTopology t(4, 4);
    const auto route = t.xy_route(t.node_at(0, 0), t.node_at(2, 2));
    ASSERT_EQ(route.size(), 4u);
    // First two hops move in X, last two in Y.
    auto [f0, t0] = t.link_ends(route[0]);
    auto [f1, t1] = t.link_ends(route[1]);
    auto [f2, t2] = t.link_ends(route[2]);
    EXPECT_EQ(t.y_of(f0), t.y_of(t0));
    EXPECT_EQ(t.y_of(f1), t.y_of(t1));
    EXPECT_EQ(t.x_of(f2), t.x_of(t2));
}

TEST(Topology, RouteToSelfIsEmpty) {
    MeshTopology t(4, 4);
    EXPECT_TRUE(t.xy_route(5, 5).empty());
}

TEST(Topology, OutOfRangeNodesThrow) {
    MeshTopology t(3, 3);
    EXPECT_THROW(t.xy_route(0, 9), RequireError);
    EXPECT_THROW(t.manhattan(9, 0), RequireError);
    EXPECT_THROW(t.node_at(3, 0), RequireError);
}

// Property test over multiple mesh sizes: every pair's XY route is
// connected, length-minimal, and stays inside the mesh.
class TopologyRouteProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TopologyRouteProperty, RoutesAreConnectedAndMinimal) {
    const auto [w, h] = GetParam();
    MeshTopology t(w, h);
    for (CoreId s = 0; s < t.node_count(); ++s) {
        for (CoreId d = 0; d < t.node_count(); ++d) {
            const auto route = t.xy_route(s, d);
            ASSERT_EQ(static_cast<int>(route.size()), t.manhattan(s, d));
            CoreId at = s;
            for (const LinkId l : route) {
                const auto [from, to] = t.link_ends(l);
                ASSERT_EQ(from, at);
                at = to;
            }
            ASSERT_EQ(at, d);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TopologyRouteProperty,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 6}, std::pair{6, 1},
                      std::pair{2, 2}, std::pair{5, 3}, std::pair{8, 8}));

}  // namespace
}  // namespace mcs
