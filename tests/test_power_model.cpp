#include "power/power_model.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

class PowerModelTest : public ::testing::Test {
protected:
    PowerModelTest()
        : tech_(technology(TechNode::nm16)),
          table_(build_vf_table(tech_)),
          model_(tech_, table_) {}

    TechnologyParams tech_;
    std::vector<VfLevel> table_;
    PowerModel model_;
    int top() const { return static_cast<int>(table_.size()) - 1; }
};

TEST_F(PowerModelTest, DynamicPowerFollowsV2F) {
    const double p = model_.dynamic_w(top(), 1.0);
    const VfLevel& l = table_.back();
    EXPECT_DOUBLE_EQ(
        p, tech_.switched_cap_f * l.voltage_v * l.voltage_v * l.freq_hz);
    // Halving activity halves dynamic power.
    EXPECT_DOUBLE_EQ(model_.dynamic_w(top(), 0.5), p / 2.0);
}

TEST_F(PowerModelTest, DynamicPowerMonotonicInLevel) {
    for (int l = 1; l <= top(); ++l) {
        EXPECT_GT(model_.dynamic_w(l, 1.0), model_.dynamic_w(l - 1, 1.0));
    }
}

TEST_F(PowerModelTest, LeakageGrowsWithTemperature) {
    const double cold = model_.leakage_w(top(), 45.0);
    const double hot = model_.leakage_w(top(), 85.0);
    EXPECT_GT(hot, cold);
    // e^(40/30) ~ 3.79x
    EXPECT_NEAR(hot / cold, std::exp(40.0 / 30.0), 1e-9);
}

TEST_F(PowerModelTest, LeakageAtReferenceTemp) {
    const double leak = model_.leakage_w(top(), tech_.leak_ref_temp_c);
    EXPECT_DOUBLE_EQ(leak, tech_.leak_current_a * tech_.nominal_vdd_v);
}

TEST_F(PowerModelTest, LeakageLowerAtLowerVoltage) {
    EXPECT_LT(model_.leakage_w(0, 45.0), model_.leakage_w(top(), 45.0));
}

TEST_F(PowerModelTest, StatePowerOrdering) {
    const double temp = 50.0;
    const double test = model_.core_power_w(CoreState::Testing, top(), temp);
    const double busy = model_.core_power_w(CoreState::Busy, top(), temp);
    const double idle = model_.core_power_w(CoreState::Idle, top(), temp);
    const double dark = model_.core_power_w(CoreState::Dark, top(), temp);
    const double faulty = model_.core_power_w(CoreState::Faulty, top(), temp);
    EXPECT_GT(test, busy);   // SBST toggles more than typical workload
    EXPECT_GT(busy, idle);
    EXPECT_GT(idle, dark);
    EXPECT_GT(dark, 0.0);    // residual gated leakage
    EXPECT_DOUBLE_EQ(dark, faulty);
}

TEST_F(PowerModelTest, DarkPowerIndependentOfLevel) {
    EXPECT_DOUBLE_EQ(model_.core_power_w(CoreState::Dark, 0, 50.0),
                     model_.core_power_w(CoreState::Dark, top(), 50.0));
}

TEST_F(PowerModelTest, TestPowerMatchesTestingState) {
    EXPECT_DOUBLE_EQ(model_.test_power_w(2, 55.0),
                     model_.core_power_w(CoreState::Testing, 2, 55.0));
}

TEST_F(PowerModelTest, ChipPowerSumsCores) {
    Chip chip(2, 2, TechNode::nm16);
    PowerModel model(chip.tech(), chip.vf_table());
    const std::vector<double> temps(4, chip.tech().leak_ref_temp_c);
    const double all_idle = model.chip_power_w(chip, temps);
    EXPECT_NEAR(all_idle,
                4.0 * model.core_power_w(CoreState::Idle, chip.max_vf_level(),
                                         chip.tech().leak_ref_temp_c),
                1e-12);
    chip.core(0).start_task(0);
    const double one_busy = model.chip_power_w(chip, temps);
    EXPECT_GT(one_busy, all_idle);
}

TEST_F(PowerModelTest, ChipPowerWithoutTempsUsesReference) {
    Chip chip(2, 2, TechNode::nm16);
    PowerModel model(chip.tech(), chip.vf_table());
    const std::vector<double> temps(4, chip.tech().leak_ref_temp_c);
    EXPECT_NEAR(model.chip_power_w(chip, {}), model.chip_power_w(chip, temps),
                1e-12);
}

TEST_F(PowerModelTest, LevelRangeChecked) {
    EXPECT_THROW(model_.dynamic_w(-1, 1.0), RequireError);
    EXPECT_THROW(model_.dynamic_w(top() + 1, 1.0), RequireError);
    EXPECT_THROW(model_.leakage_w(99, 50.0), RequireError);
}

TEST_F(PowerModelTest, ActivityOfStates) {
    EXPECT_DOUBLE_EQ(model_.activity_of(CoreState::Busy),
                     model_.activity().busy);
    EXPECT_DOUBLE_EQ(model_.activity_of(CoreState::Dark), 0.0);
    EXPECT_DOUBLE_EQ(model_.activity_of(CoreState::Faulty), 0.0);
}

// Dark-silicon sanity: at 16nm a full chip of busy cores at top level must
// exceed the TDP (that is the premise of the whole paper).
TEST(PowerModelDarkSilicon, FullSpeedChipExceedsTdp) {
    Chip chip(8, 8, TechNode::nm16);
    PowerModel model(chip.tech(), chip.vf_table());
    for (Core& c : chip.cores()) {
        c.start_task(0);
    }
    EXPECT_GT(model.chip_power_w(chip, {}), chip.tdp_w() * 1.5);
}

// ...but at 45nm the chip is nearly all-lit.
TEST(PowerModelDarkSilicon, OldNodeFitsMostOfChip) {
    Chip chip(8, 8, TechNode::nm45);
    PowerModel model(chip.tech(), chip.vf_table());
    for (Core& c : chip.cores()) {
        c.start_task(0);
    }
    const double full = model.chip_power_w(chip, {});
    EXPECT_LT(full, chip.tdp_w() * 1.25);
}

}  // namespace
}  // namespace mcs
