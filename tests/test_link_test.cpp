#include "noc/link_test.hpp"

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

NocTestParams enabled_params() {
    NocTestParams p;
    p.fault_rate_per_link_s = 1.0;
    return p;
}

TEST(LinkTester, NoFaultsWhenRateZero) {
    LinkTester t(10, NocTestParams{}, 1);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(t.step(static_cast<SimTime>(i), 1.0).empty());
    }
    EXPECT_EQ(t.injected_count(), 0u);
}

TEST(LinkTester, FaultsArriveAndAreCapped) {
    NocTestParams p;
    p.fault_rate_per_link_s = 100.0;  // certain per step
    LinkTester t(10, p, 2);
    t.step(0, 1.0);
    EXPECT_EQ(t.injected_count(), 10u);
    t.step(1, 1.0);
    EXPECT_EQ(t.injected_count(), 10u);  // one latent fault per link
    for (LinkId l = 0; l < 10; ++l) {
        EXPECT_TRUE(t.has_latent_fault(l));
    }
}

TEST(LinkTester, DetectionRepairsLink) {
    NocTestParams p = enabled_params();
    p.fault_rate_per_link_s = 100.0;
    p.test_coverage = 1.0;
    LinkTester t(4, p, 3);
    t.step(50, 1.0);
    ASSERT_TRUE(t.has_latent_fault(2));
    const auto det = t.attempt_detection(2, 200);
    ASSERT_TRUE(det.has_value());
    EXPECT_EQ(det->injected, 50u);
    EXPECT_EQ(det->detected_at, 200u);
    EXPECT_FALSE(t.has_latent_fault(2));  // repaired
    EXPECT_EQ(t.detected_count(), 1u);
    // The repaired link can fail again (the other three still hold their
    // original latent faults, so only link 2 gets a fresh one).
    t.step(300, 1.0);
    EXPECT_TRUE(t.has_latent_fault(2));
    EXPECT_EQ(t.injected_count(), 5u);
}

TEST(LinkTester, ZeroCoverageAlwaysEscapes) {
    NocTestParams p = enabled_params();
    p.fault_rate_per_link_s = 100.0;
    p.test_coverage = 0.0;
    LinkTester t(2, p, 4);
    t.step(0, 1.0);
    EXPECT_FALSE(t.attempt_detection(0, 10).has_value());
    EXPECT_EQ(t.escaped_tests(), 1u);
    EXPECT_TRUE(t.has_latent_fault(0));
}

TEST(LinkTester, HealthyLinkDetectionIsNoop) {
    LinkTester t(2, NocTestParams{}, 5);
    EXPECT_FALSE(t.attempt_detection(0, 10).has_value());
    EXPECT_EQ(t.escaped_tests(), 0u);
}

TEST(LinkTester, CorruptionOnlyOnFaultyLinks) {
    NocTestParams p = enabled_params();
    p.fault_rate_per_link_s = 100.0;
    p.message_corruption_prob = 1.0;
    LinkTester t(2, p, 6);
    EXPECT_FALSE(t.roll_message_corruption(0));
    t.step(0, 1.0);
    EXPECT_TRUE(t.roll_message_corruption(0));
    EXPECT_EQ(t.corrupted_messages(), 1u);
}

TEST(LinkTester, Validation) {
    EXPECT_THROW(LinkTester(0, NocTestParams{}, 1), RequireError);
    NocTestParams p;
    p.test_coverage = 1.5;
    EXPECT_THROW(LinkTester(4, p, 1), RequireError);
    p = NocTestParams{};
    p.test_bytes = 0;
    EXPECT_THROW(LinkTester(4, p, 1), RequireError);
    p = NocTestParams{};
    p.max_concurrent_tests = 0;
    EXPECT_THROW(LinkTester(4, p, 1), RequireError);
    LinkTester ok(4, NocTestParams{}, 1);
    EXPECT_THROW(ok.has_latent_fault(4), RequireError);
}

TEST(LinkTestSystem, LinksGetTestedUnderBudget) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = 21;
    cfg.enable_noc_testing = true;
    cfg.noc_test.test_period_target = 500 * kMillisecond;
    cfg.workload.arrival_rate_hz = 100.0;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(3 * kSecond);
    EXPECT_GT(m.link_tests_completed,
              sys.network().topology().link_count());  // several rounds
    EXPECT_LT(m.max_open_link_test_gap_s, 1.5);
    EXPECT_EQ(m.tdp_violations, 0u);
}

TEST(LinkTestSystem, LinkFaultsDetectedEndToEnd) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = 23;
    cfg.enable_noc_testing = true;
    cfg.noc_test.fault_rate_per_link_s = 0.05;
    cfg.noc_test.test_period_target = 300 * kMillisecond;
    cfg.workload.arrival_rate_hz = 200.0;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(4 * kSecond);
    EXPECT_GT(m.link_faults_injected, 0u);
    EXPECT_GT(m.link_faults_detected, 0u);
    EXPECT_GT(m.link_detection_latency_s.count(), 0u);
}

TEST(LinkTestSystem, DisabledByDefault) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.workload.arrival_rate_hz = 100.0;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(kSecond);
    EXPECT_EQ(m.link_tests_completed, 0u);
    EXPECT_EQ(m.link_faults_injected, 0u);
    EXPECT_EQ(sys.link_tester(), nullptr);
}

TEST(NetworkRouteExposure, LastRouteMatchesTransfer) {
    Network net(4, 4);
    const Transfer t = net.send(0, 5, 100);
    EXPECT_EQ(net.last_route().size(), static_cast<std::size_t>(t.hops));
    net.send(3, 3, 100);
    EXPECT_TRUE(net.last_route().empty());
}

TEST(NetworkInjectLoad, RaisesUtilization) {
    NocParams p;
    p.util_window = 100 * kMicrosecond;
    Network net(4, 1, p);
    net.inject_link_load(0, 1'000'000);
    net.roll_window();
    EXPECT_GT(net.link_utilization(0), 0.0);
    EXPECT_THROW(net.inject_link_load(
                     static_cast<LinkId>(net.topology().link_count()), 1),
                 RequireError);
}

TEST(NetworkLinkTransferTime, ScalesWithBytes) {
    Network net(4, 4);
    EXPECT_GT(net.link_transfer_time(100000), net.link_transfer_time(100));
}

}  // namespace
}  // namespace mcs
