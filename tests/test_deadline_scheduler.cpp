#include "core/schedulers.hpp"

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/technology.hpp"
#include "core/system.hpp"
#include "core/system_factory.hpp"
#include "telemetry/json.hpp"
#include "telemetry/run_report.hpp"
#include "util/config.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"

namespace mcs {
namespace {

/// Harness: fabricates a SchedulerContext (with a session-duration model,
/// which the deadline policy needs for its laxity test) and records
/// start_test calls.
class Harness {
public:
    Harness() : table_(build_vf_table(technology(TechNode::nm16))) {}

    SchedulerContext make(SimTime now, double slack_w,
                          std::vector<TestCandidate> candidates,
                          double per_test_power_w = 1.0,
                          SimDuration session = 100 * kMillisecond) {
        SchedulerContext ctx;
        ctx.now = now;
        ctx.tdp_w = 30.0;
        ctx.power_slack_w = slack_w;
        ctx.tests_running = 0;
        ctx.vf_table = &table_;
        ctx.candidates = std::move(candidates);
        ctx.test_power_w = [this, per_test_power_w](CoreId, int level) {
            return per_test_power_w *
                   (0.5 + static_cast<double>(level) /
                              static_cast<double>(table_.size() - 1));
        };
        ctx.test_duration = [session](int) { return session; };
        ctx.start_test = [this](CoreId core, int level) {
            started_.push_back({core, level});
        };
        return ctx;
    }

    static TestCandidate idle(CoreId core) {
        return TestCandidate{core, 1.0, false, 1 * kSecond};
    }

    const std::vector<std::pair<CoreId, int>>& started() const {
        return started_;
    }
    void reset() { started_.clear(); }
    int top_level() const { return static_cast<int>(table_.size()) - 1; }
    double top_power(double per_test_power_w = 1.0) const {
        return per_test_power_w * 1.5;
    }

private:
    std::vector<VfLevel> table_;
    std::vector<std::pair<CoreId, int>> started_;
};

TEST(DeadlineScheduler, ServesEarliestDeadlineFirst) {
    Harness h;
    DeadlineAwareTestScheduler sched(1 * kSecond, 0.0);
    // First-seen deadlines stagger by core id: core c is due at
    // 1s + 1s*(c%16)/16. At now = 1s with a 100 ms session (200 ms laxity
    // margin) all four are urgent; 3.2 W of slack fits exactly two 1.5 W
    // sessions, taken in deadline order.
    auto ctx = h.make(1 * kSecond, 3.2,
                      {h.idle(3), h.idle(1), h.idle(2), h.idle(0)});
    sched.epoch(ctx);
    ASSERT_EQ(h.started().size(), 2u);
    EXPECT_EQ(h.started()[0].first, 0u);
    EXPECT_EQ(h.started()[1].first, 1u);
    EXPECT_EQ(h.started()[0].second, h.top_level());
    EXPECT_EQ(sched.admitted(), 2u);
    EXPECT_EQ(sched.rejected_power(), 2u);
    EXPECT_EQ(sched.deadline_misses(), 0u);
}

TEST(DeadlineScheduler, LaxityDefersNonUrgentCores) {
    Harness h;
    DeadlineAwareTestScheduler sched(1 * kSecond, 0.0);
    // At now = 0.5 s every first deadline is >= 1 s and the margin is only
    // 0.2 s: nothing is urgent, so nothing starts (and nothing is a power
    // rejection either -- the policy never even prices the candidates).
    auto ctx = h.make(500 * kMillisecond, 100.0,
                      {h.idle(0), h.idle(1), h.idle(2)});
    sched.epoch(ctx);
    EXPECT_TRUE(h.started().empty());
    EXPECT_EQ(sched.admitted(), 0u);
    EXPECT_EQ(sched.rejected_power(), 0u);
    EXPECT_EQ(sched.deadline_misses(), 0u);
}

TEST(DeadlineScheduler, NeverAdmitsPastTheGuardedSlack) {
    // Conformance sweep: across randomized slack / guard / power / fleet
    // combinations, total admitted power never exceeds slack minus guard.
    Rng rng(99);
    for (int trial = 0; trial < 500; ++trial) {
        Harness h;
        const double guard_fraction = rng.bernoulli(0.5) ? 0.1 : 0.0;
        DeadlineAwareTestScheduler sched(100 * kMillisecond, guard_fraction);
        const double slack = rng.uniform(0.0, 6.0);
        const double unit_power = rng.uniform(0.2, 2.0);
        std::vector<TestCandidate> cands;
        const std::size_t n = 1 + rng.index(10);
        for (std::size_t i = 0; i < n; ++i) {
            cands.push_back(Harness::idle(static_cast<CoreId>(i)));
        }
        // Far past every first deadline, so urgency never blocks admission.
        auto ctx = h.make(1 * kSecond, slack, std::move(cands), unit_power,
                          10 * kMillisecond);
        sched.epoch(ctx);
        double admitted_power = 0.0;
        for (const auto& [core, level] : h.started()) {
            EXPECT_EQ(level, h.top_level());
            admitted_power += ctx.test_power_w(core, level);
        }
        if (!h.started().empty()) {
            // Every admission cleared the guard, so in total the admitted
            // power fits under slack with the full guard band to spare.
            EXPECT_LE(admitted_power + guard_fraction * ctx.tdp_w,
                      slack + 1e-9)
                << "trial " << trial
                << ": admission violates the guard band";
        }
    }
}

TEST(DeadlineScheduler, RespectsMaxConcurrentTests) {
    Harness h;
    DeadlineAwareTestScheduler sched(1 * kSecond, 0.0,
                                     /*max_concurrent_tests=*/1);
    auto ctx = h.make(2 * kSecond, 100.0, {h.idle(0), h.idle(1)});
    sched.epoch(ctx);
    EXPECT_EQ(h.started().size(), 1u);

    h.reset();
    auto ctx2 = h.make(4 * kSecond, 100.0, {h.idle(0), h.idle(1)});
    ctx2.tests_running = 1;  // already at the cap
    sched.epoch(ctx2);
    EXPECT_TRUE(h.started().empty());
}

TEST(DeadlineScheduler, CountsOneMissPerSlippedPeriod) {
    Harness h;
    DeadlineAwareTestScheduler sched(100 * kMillisecond, 0.0);
    // Core 0's first deadline is 100 ms; showing up only at 350 ms means
    // the 100/200/300 ms deadlines all slipped: three misses, and the
    // cadence resumes on its original grid (next due 400 ms).
    auto ctx = h.make(350 * kMillisecond, 100.0, {h.idle(0)},
                      /*per_test_power_w=*/1.0, /*session=*/0);
    sched.epoch(ctx);
    EXPECT_TRUE(h.started().empty());  // 350 + 0 margin < 400: not urgent
    EXPECT_EQ(sched.deadline_misses(), 3u);

    auto ctx2 = h.make(400 * kMillisecond, 100.0, {h.idle(0)},
                       /*per_test_power_w=*/1.0, /*session=*/0);
    sched.epoch(ctx2);
    EXPECT_EQ(h.started().size(), 1u);
    EXPECT_EQ(sched.deadline_misses(), 3u);
}

TEST(DeadlineScheduler, FeasibleCadenceMeetsEveryDeadline) {
    // A core that is always offered with ample power meets a 200 ms test
    // cadence for 2 simulated seconds without a single miss.
    Harness h;
    DeadlineAwareTestScheduler sched(200 * kMillisecond, 0.0);
    for (SimTime now = 10 * kMillisecond; now <= 2 * kSecond;
         now += 10 * kMillisecond) {
        auto ctx = h.make(now, 100.0, {h.idle(0)},
                          /*per_test_power_w=*/1.0,
                          /*session=*/50 * kMillisecond);
        sched.epoch(ctx);
    }
    EXPECT_EQ(sched.deadline_misses(), 0u);
    // First due at 200 ms, then every 200 ms: 10 sessions by 2 s.
    EXPECT_EQ(sched.admitted(), 10u);
}

TEST(DeadlineScheduler, SaveLoadRoundTripsExactly) {
    Harness h;
    DeadlineAwareTestScheduler sched(1 * kSecond, 0.04);
    auto ctx = h.make(2 * kSecond, 2.0, {h.idle(0), h.idle(1), h.idle(2)});
    sched.epoch(ctx);

    const auto save = [](const DeadlineAwareTestScheduler& s) {
        std::ostringstream os;
        telemetry::JsonWriter w(os);
        w.begin_object();
        s.save_state(w);
        w.end_object();
        return os.str();
    };
    const std::string bytes = save(sched);

    DeadlineAwareTestScheduler fresh(1 * kSecond, 0.04);
    fresh.load_state(telemetry::parse_json(bytes));
    EXPECT_EQ(save(fresh), bytes);
    EXPECT_EQ(fresh.admitted(), sched.admitted());
    EXPECT_EQ(fresh.rejected_power(), sched.rejected_power());
    EXPECT_EQ(fresh.deadline_misses(), sched.deadline_misses());
}

TEST(DeadlineScheduler, SelectableThroughConfigAndExportsTelemetry) {
    // End to end through the key=value bridge: scheduler=deadline builds
    // the policy, the run completes, and the run report carries the
    // policy's counters.
    Config cfg;
    cfg.set("side", "4");
    cfg.set("scheduler", "deadline");
    cfg.set("test_period_ms", "100");
    cfg.set("seed", "3");
    auto sys = make_system(cfg);
    EXPECT_EQ(sys->scheduler().name(), "deadline");
    const RunMetrics metrics = sys->run(500 * kMillisecond);
    (void)metrics;
    std::ostringstream os;
    telemetry::write_run_report(metrics, &sys->registry(), os);
    const std::string report = os.str();
    EXPECT_NE(report.find("scheduler.tests_admitted"), std::string::npos);
    EXPECT_NE(report.find("scheduler.deadline_misses"), std::string::npos);
}

}  // namespace
}  // namespace mcs
