#include "core/schedulers.hpp"

#include <set>

#include <gtest/gtest.h>

#include "arch/technology.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

/// Harness: fabricates a SchedulerContext and records start_test calls.
class SchedulerHarness {
public:
    SchedulerHarness()
        : table_(build_vf_table(technology(TechNode::nm16))) {}

    SchedulerContext make(SimTime now, double slack_w,
                          std::vector<TestCandidate> candidates,
                          double per_test_power_w = 1.0) {
        SchedulerContext ctx;
        ctx.now = now;
        ctx.tdp_w = 30.0;
        ctx.power_slack_w = slack_w;
        ctx.tests_running = 0;
        ctx.vf_table = &table_;
        ctx.candidates = std::move(candidates);
        ctx.test_power_w = [this, per_test_power_w](CoreId, int level) {
            // Power scales with level so level choice is observable.
            return per_test_power_w *
                   (0.5 + static_cast<double>(level) /
                              static_cast<double>(table_.size() - 1));
        };
        ctx.start_test = [this](CoreId core, int level) {
            started_.push_back({core, level});
        };
        return ctx;
    }

    TestCandidate idle(CoreId core, double crit,
                       SimDuration age = seconds(1)) {
        return TestCandidate{core, crit, false, age};
    }

    const std::vector<std::pair<CoreId, int>>& started() const {
        return started_;
    }
    void reset() { started_.clear(); }
    int top_level() const { return static_cast<int>(table_.size()) - 1; }

private:
    std::vector<VfLevel> table_;
    std::vector<std::pair<CoreId, int>> started_;
};

TEST(PowerAware, TestsMostCriticalFirst) {
    SchedulerHarness h;
    PowerAwareParams p;
    p.guard_band_fraction = 0.0;
    PowerAwareTestScheduler sched(p);
    // Rotation starts every core at the top level (1.5 W); slack fits two.
    auto ctx = h.make(seconds(1), 3.2,
                      {h.idle(0, 0.6), h.idle(1, 1.5), h.idle(2, 0.9)});
    sched.epoch(ctx);
    ASSERT_EQ(h.started().size(), 2u);
    EXPECT_EQ(h.started()[0].first, 1u);  // highest criticality first
    EXPECT_EQ(h.started()[1].first, 2u);
}

TEST(PowerAware, RespectsThreshold) {
    SchedulerHarness h;
    PowerAwareParams p;
    p.criticality_threshold = 0.5;
    PowerAwareTestScheduler sched(p);
    auto ctx = h.make(seconds(1), 100.0,
                      {h.idle(0, 0.49), h.idle(1, 0.2)});
    sched.epoch(ctx);
    EXPECT_TRUE(h.started().empty());
}

TEST(PowerAware, RespectsPowerSlack) {
    SchedulerHarness h;
    PowerAwareParams p;
    p.guard_band_fraction = 0.0;
    PowerAwareTestScheduler sched(p);
    auto ctx = h.make(seconds(1), 0.0, {h.idle(0, 2.0), h.idle(1, 2.0)});
    sched.epoch(ctx);
    EXPECT_TRUE(h.started().empty());
    EXPECT_GT(sched.rejected_power(), 0u);
}

TEST(PowerAware, GuardBandReservesMargin) {
    SchedulerHarness h;
    PowerAwareParams p;
    p.guard_band_fraction = 0.10;  // 3 W of the 30 W TDP
    p.vf_policy = TestVfPolicy::MaxOnly;
    PowerAwareTestScheduler sched(p);
    // One test at top level costs 1.5 W and must clear slack - guard:
    // 1.5 + 3.0 <= 5.0 admits the first, then 1.5 + 3.0 > 3.5 rejects the
    // second.
    auto ctx = h.make(seconds(1), 5.0, {h.idle(0, 2.0), h.idle(1, 2.0)});
    sched.epoch(ctx);
    EXPECT_EQ(h.started().size(), 1u);
}

TEST(PowerAware, AdmitsCheaperTestWhenExpensiveDoesNotFit) {
    SchedulerHarness h;
    PowerAwareParams p;
    p.guard_band_fraction = 0.0;
    p.vf_policy = TestVfPolicy::RotateAll;
    PowerAwareTestScheduler sched(p);
    // Core 0 rotates to the top level (1.5 W) which does not fit in 1.0 W
    // slack; core 1 also starts at top. Nothing fits -> both rejected, but
    // the rotation is rolled back so the next epoch retries the same level.
    auto ctx = h.make(seconds(1), 1.0, {h.idle(0, 2.0), h.idle(1, 1.0)});
    sched.epoch(ctx);
    EXPECT_TRUE(h.started().empty());
    // Min-only policy fits (0.5 W).
    PowerAwareParams p2 = p;
    p2.vf_policy = TestVfPolicy::MinOnly;
    PowerAwareTestScheduler sched2(p2);
    auto ctx2 = h.make(seconds(1), 1.0, {h.idle(0, 2.0), h.idle(1, 1.0)});
    sched2.epoch(ctx2);
    EXPECT_EQ(h.started().size(), 2u);
    EXPECT_EQ(h.started()[0].second, 0);  // bottom level
}

TEST(PowerAware, RotationCoversAllLevels) {
    SchedulerHarness h;
    PowerAwareParams p;
    p.guard_band_fraction = 0.0;
    p.vf_policy = TestVfPolicy::RotateAll;
    PowerAwareTestScheduler sched(p);
    std::set<int> levels;
    for (int round = 0; round < h.top_level() + 1; ++round) {
        h.reset();
        auto ctx = h.make(seconds(1), 100.0, {h.idle(0, 2.0)});
        sched.epoch(ctx);
        ASSERT_EQ(h.started().size(), 1u);
        levels.insert(h.started()[0].second);
    }
    EXPECT_EQ(levels.size(), static_cast<std::size_t>(h.top_level() + 1));
}

TEST(PowerAware, MaxOnlyAlwaysTopLevel) {
    SchedulerHarness h;
    PowerAwareParams p;
    p.guard_band_fraction = 0.0;
    p.vf_policy = TestVfPolicy::MaxOnly;
    PowerAwareTestScheduler sched(p);
    for (int round = 0; round < 3; ++round) {
        h.reset();
        auto ctx = h.make(seconds(1), 100.0, {h.idle(0, 2.0)});
        sched.epoch(ctx);
        ASSERT_EQ(h.started().size(), 1u);
        EXPECT_EQ(h.started()[0].second, h.top_level());
    }
}

TEST(PowerAware, MinIdleAgeFiltersFreshCores) {
    SchedulerHarness h;
    PowerAwareParams p;
    p.guard_band_fraction = 0.0;
    p.min_idle_age = kMillisecond;
    PowerAwareTestScheduler sched(p);
    auto ctx = h.make(seconds(1), 100.0,
                      {h.idle(0, 2.0, 100 * kMicrosecond),
                       h.idle(1, 1.0, 2 * kMillisecond)});
    sched.epoch(ctx);
    ASSERT_EQ(h.started().size(), 1u);
    EXPECT_EQ(h.started()[0].first, 1u);
}

TEST(PowerAware, DarkCoresExemptFromIdleAge) {
    SchedulerHarness h;
    PowerAwareParams p;
    p.guard_band_fraction = 0.0;
    p.min_idle_age = kSecond;
    PowerAwareTestScheduler sched(p);
    auto ctx = h.make(seconds(1), 100.0,
                      {TestCandidate{0, 2.0, /*dark=*/true, 0}});
    sched.epoch(ctx);
    EXPECT_EQ(h.started().size(), 1u);
}

TEST(PowerAware, MaxConcurrentCap) {
    SchedulerHarness h;
    PowerAwareParams p;
    p.guard_band_fraction = 0.0;
    p.max_concurrent_tests = 2;
    PowerAwareTestScheduler sched(p);
    auto ctx = h.make(seconds(1), 100.0,
                      {h.idle(0, 2.0), h.idle(1, 2.0), h.idle(2, 2.0)});
    ctx.tests_running = 1;  // one already in flight
    sched.epoch(ctx);
    EXPECT_EQ(h.started().size(), 1u);
}

TEST(PowerAware, CountsAdmitted) {
    SchedulerHarness h;
    PowerAwareParams p;
    p.guard_band_fraction = 0.0;
    PowerAwareTestScheduler sched(p);
    auto ctx = h.make(seconds(1), 100.0, {h.idle(0, 2.0), h.idle(1, 2.0)});
    sched.epoch(ctx);
    EXPECT_EQ(sched.admitted(), 2u);
}

TEST(PowerAware, Validation) {
    PowerAwareParams p;
    p.guard_band_fraction = 1.0;
    EXPECT_THROW(PowerAwareTestScheduler{p}, RequireError);
    p = PowerAwareParams{};
    p.max_concurrent_tests = 0;
    EXPECT_THROW(PowerAwareTestScheduler{p}, RequireError);
}

TEST(Periodic, TestsWhenDueIgnoringPower) {
    SchedulerHarness h;
    PeriodicTestScheduler sched(seconds(1));
    // Zero slack: periodic tests anyway (power-oblivious) at top level.
    auto ctx = h.make(seconds(2), 0.0, {h.idle(0, 0.0)});
    sched.epoch(ctx);
    ASSERT_EQ(h.started().size(), 1u);
    EXPECT_EQ(h.started()[0].second, h.top_level());
}

TEST(Periodic, NotDueAgainUntilPeriodElapses) {
    SchedulerHarness h;
    PeriodicTestScheduler sched(seconds(1));
    auto ctx = h.make(seconds(2), 0.0, {h.idle(0, 0.0)});
    sched.epoch(ctx);
    ASSERT_EQ(h.started().size(), 1u);
    h.reset();
    auto ctx2 = h.make(seconds(2) + milliseconds(500), 0.0,
                       {h.idle(0, 0.0)});
    sched.epoch(ctx2);
    EXPECT_TRUE(h.started().empty());
    auto ctx3 = h.make(seconds(3), 0.0, {h.idle(0, 0.0)});
    sched.epoch(ctx3);
    EXPECT_EQ(h.started().size(), 1u);
}

TEST(Periodic, InitialDueTimesStaggered) {
    SchedulerHarness h;
    PeriodicTestScheduler sched(seconds(1));
    // At t=0+, only cores with stagger 0 (core % 16 == 0) are due.
    std::vector<TestCandidate> cands;
    for (CoreId id = 0; id < 16; ++id) {
        cands.push_back(h.idle(id, 0.0));
    }
    auto ctx = h.make(1, 0.0, cands);
    sched.epoch(ctx);
    EXPECT_LT(h.started().size(), 16u);
    EXPECT_GE(h.started().size(), 1u);
}

TEST(Periodic, RejectsZeroPeriod) {
    EXPECT_THROW(PeriodicTestScheduler{0}, RequireError);
}

TEST(Greedy, TestsEverythingImmediately) {
    SchedulerHarness h;
    GreedyTestScheduler sched;
    std::vector<TestCandidate> cands;
    for (CoreId id = 0; id < 8; ++id) {
        cands.push_back(h.idle(id, 0.0));
    }
    auto ctx = h.make(seconds(1), 0.0, cands);
    sched.epoch(ctx);
    EXPECT_EQ(h.started().size(), 8u);
}

TEST(Greedy, MinGapPreventsImmediateRetest) {
    SchedulerHarness h;
    GreedyTestScheduler sched(100 * kMillisecond);
    auto ctx = h.make(seconds(1), 0.0, {h.idle(0, 0.0)});
    sched.epoch(ctx);
    ASSERT_EQ(h.started().size(), 1u);
    h.reset();
    auto ctx2 = h.make(seconds(1) + milliseconds(50), 0.0, {h.idle(0, 0.0)});
    sched.epoch(ctx2);
    EXPECT_TRUE(h.started().empty());
    auto ctx3 = h.make(seconds(1) + milliseconds(150), 0.0,
                       {h.idle(0, 0.0)});
    sched.epoch(ctx3);
    EXPECT_EQ(h.started().size(), 1u);
}

TEST(Null, NeverTests) {
    SchedulerHarness h;
    NullTestScheduler sched;
    auto ctx = h.make(seconds(1), 100.0, {h.idle(0, 99.0)});
    sched.epoch(ctx);
    EXPECT_TRUE(h.started().empty());
}

TEST(VfPolicy, Names) {
    EXPECT_STREQ(to_string(TestVfPolicy::RotateAll), "rotate-all");
    EXPECT_STREQ(to_string(TestVfPolicy::MaxOnly), "max-only");
    EXPECT_STREQ(to_string(TestVfPolicy::MinOnly), "min-only");
}

}  // namespace
}  // namespace mcs
