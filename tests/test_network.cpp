#include "noc/network.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

NocParams fast_params() {
    NocParams p;
    p.link_bandwidth_bytes_per_s = 1.0e9;
    p.router_latency = 4;
    p.util_window = 100 * kMicrosecond;
    return p;
}

TEST(Network, LocalTransferIsFree) {
    Network net(4, 4, fast_params());
    const Transfer t = net.send(5, 5, 1000);
    EXPECT_EQ(t.latency, 0u);
    EXPECT_EQ(t.hops, 0);
    EXPECT_DOUBLE_EQ(t.energy_j, 0.0);
    EXPECT_EQ(net.messages_sent(), 1u);
}

TEST(Network, ZeroBytesIsFree) {
    Network net(4, 4, fast_params());
    const Transfer t = net.send(0, 15, 0);
    EXPECT_EQ(t.latency, 0u);
}

TEST(Network, LatencyGrowsWithHops) {
    Network net(8, 1, fast_params());
    const Transfer near = net.send(0, 1, 1000);
    const Transfer far = net.send(0, 7, 1000);
    EXPECT_EQ(near.hops, 1);
    EXPECT_EQ(far.hops, 7);
    EXPECT_GT(far.latency, near.latency);
    // Difference is exactly the extra router hops (same serialization).
    EXPECT_EQ(far.latency - near.latency, 6 * fast_params().router_latency);
}

TEST(Network, LatencyGrowsWithBytes) {
    Network net(4, 4, fast_params());
    const Transfer small = net.send(0, 1, 1000);
    const Transfer big = net.send(0, 1, 100000);
    EXPECT_GT(big.latency, small.latency);
    // 100000 B at 1 GB/s = 100 us serialization.
    EXPECT_NEAR(to_microseconds(big.latency), 100.0, 1.0);
}

TEST(Network, EnergyProportionalToByteHops) {
    NocParams p = fast_params();
    p.energy_per_byte_hop_j = 1e-12;
    Network net(8, 1, p);
    const Transfer t = net.send(0, 4, 1000);  // 4 hops
    EXPECT_DOUBLE_EQ(t.energy_j, 1000.0 * 4.0 * 1e-12);
    EXPECT_DOUBLE_EQ(net.total_energy_j(), t.energy_j);
    EXPECT_EQ(net.total_hop_bytes(), 4000u);
}

TEST(Network, UtilizationBuildsWithTraffic) {
    Network net(4, 1, fast_params());
    EXPECT_DOUBLE_EQ(net.peak_utilization(), 0.0);
    // Saturate link 0->1: window capacity = 1e9 * 100us = 100 kB.
    net.send(0, 1, 100'000);
    net.roll_window();
    EXPECT_GT(net.peak_utilization(), 0.25);  // alpha * 1.0
    EXPECT_GT(net.mean_utilization(), 0.0);
    EXPECT_LT(net.mean_utilization(), net.peak_utilization());
}

TEST(Network, UtilizationDecaysWithoutTraffic) {
    Network net(4, 1, fast_params());
    net.send(0, 1, 100'000);
    net.roll_window();
    const double u1 = net.peak_utilization();
    net.roll_window();
    net.roll_window();
    EXPECT_LT(net.peak_utilization(), u1);
}

TEST(Network, CongestionInflatesLatency) {
    Network net(4, 1, fast_params());
    const Transfer before = net.send(0, 3, 10'000);
    // Hammer the same path, then roll the window to update utilization.
    for (int i = 0; i < 20; ++i) {
        net.send(0, 3, 100'000);
    }
    net.roll_window();
    const Transfer after = net.send(0, 3, 10'000);
    EXPECT_GT(after.bottleneck_util, before.bottleneck_util);
    EXPECT_GT(after.latency, before.latency);
}

TEST(Network, CongestedLatencyStaysFinite) {
    Network net(4, 1, fast_params());
    for (int i = 0; i < 1000; ++i) {
        net.send(0, 3, 1'000'000);
        if (i % 10 == 0) {
            net.roll_window();
        }
    }
    net.roll_window();
    const Transfer t = net.send(0, 3, 1000);
    // Even at max modeled utilization (0.95), slowdown is bounded by 20x.
    const double base_s = 1000.0 / fast_params().link_bandwidth_bytes_per_s;
    EXPECT_LT(to_seconds(t.latency), base_s * 25.0);
}

TEST(Network, LinkUtilizationPerLink) {
    Network net(4, 1, fast_params());
    net.send(0, 1, 50'000);
    net.roll_window();
    const MeshTopology& topo = net.topology();
    const LinkId used = topo.link_between(0, 1);
    const LinkId unused = topo.link_between(1, 0);
    EXPECT_GT(net.link_utilization(used), 0.0);
    EXPECT_DOUBLE_EQ(net.link_utilization(unused), 0.0);
    EXPECT_THROW(net.link_utilization(static_cast<LinkId>(
                     topo.link_count())),
                 RequireError);
}

TEST(Network, RouterIdlePowerScalesWithNodes) {
    NocParams p = fast_params();
    p.router_idle_power_w = 0.01;
    Network small(2, 2, p);
    Network big(4, 4, p);
    EXPECT_DOUBLE_EQ(small.routers_idle_power_w(), 0.04);
    EXPECT_DOUBLE_EQ(big.routers_idle_power_w(), 0.16);
}

TEST(Network, StatsAccumulate) {
    Network net(4, 4, fast_params());
    net.send(0, 5, 100);
    net.send(3, 12, 200);
    EXPECT_EQ(net.messages_sent(), 2u);
    EXPECT_EQ(net.bytes_sent(), 300u);
}

TEST(Network, RejectsBadParams) {
    NocParams p = fast_params();
    p.link_bandwidth_bytes_per_s = 0.0;
    EXPECT_THROW(Network(4, 4, p), RequireError);
    p = fast_params();
    p.util_ewma_alpha = 0.0;
    EXPECT_THROW(Network(4, 4, p), RequireError);
    p = fast_params();
    p.util_window = 0;
    EXPECT_THROW(Network(4, 4, p), RequireError);
}

}  // namespace
}  // namespace mcs
