#include "app/workload.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

TEST(TaskGraphGenerator, RespectsTaskCountRange) {
    TaskGraphGenParams p;
    p.min_tasks = 5;
    p.max_tasks = 9;
    TaskGraphGenerator gen(p);
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const TaskGraph g = gen.generate(rng);
        EXPECT_GE(g.size(), 5u);
        EXPECT_LE(g.size(), 9u);
    }
}

TEST(TaskGraphGenerator, CyclesWithinBounds) {
    TaskGraphGenParams p;
    p.min_cycles = 1000;
    p.max_cycles = 5000;
    TaskGraphGenerator gen(p);
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        const TaskGraph g = gen.generate(rng);
        for (TaskIndex t = 0; t < g.size(); ++t) {
            EXPECT_GE(g.task(t).cycles, 1000u);
            EXPECT_LE(g.task(t).cycles, 5001u);  // exp/log rounding slack
        }
    }
}

TEST(TaskGraphGenerator, EdgeBytesWithinBounds) {
    TaskGraphGenParams p;
    p.min_edge_bytes = 100;
    p.max_edge_bytes = 200;
    TaskGraphGenerator gen(p);
    Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        const TaskGraph g = gen.generate(rng);
        for (TaskIndex t = 0; t < g.size(); ++t) {
            for (const TaskEdge& e : g.task(t).successors) {
                EXPECT_GE(e.bytes, 100u);
                EXPECT_LE(e.bytes, 200u);
            }
        }
    }
}

TEST(TaskGraphGenerator, GraphsAreConnectedEnough) {
    // Every non-source task must have at least one predecessor (guaranteed
    // by construction) and sources only sit in the first layer.
    TaskGraphGenerator gen;
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
        const TaskGraph g = gen.generate(rng);
        // Multi-task graphs have fewer sources than tasks (layers >= 2).
        if (g.size() > 1) {
            EXPECT_LT(g.sources().size(), g.size());
        }
    }
}

TEST(TaskGraphGenerator, DeterministicGivenRngState) {
    TaskGraphGenerator gen;
    Rng a(13), b(13);
    for (int i = 0; i < 20; ++i) {
        const TaskGraph ga = gen.generate(a);
        const TaskGraph gb = gen.generate(b);
        ASSERT_EQ(ga.size(), gb.size());
        ASSERT_EQ(ga.total_cycles(), gb.total_cycles());
        ASSERT_EQ(ga.total_comm_bytes(), gb.total_comm_bytes());
    }
}

TEST(TaskGraphGenerator, SingleTaskGraphsSupported) {
    TaskGraphGenParams p;
    p.min_tasks = 1;
    p.max_tasks = 1;
    TaskGraphGenerator gen(p);
    Rng rng(17);
    const TaskGraph g = gen.generate(rng);
    EXPECT_EQ(g.size(), 1u);
    EXPECT_EQ(g.edge_count(), 0u);
}

TEST(TaskGraphGenerator, MeanCyclesEstimateIsInRange) {
    TaskGraphGenParams p;
    const double mean = TaskGraphGenerator::estimate_mean_app_cycles(p);
    const double lo = static_cast<double>(p.min_tasks) *
                      static_cast<double>(p.min_cycles);
    const double hi = static_cast<double>(p.max_tasks) *
                      static_cast<double>(p.max_cycles);
    EXPECT_GT(mean, lo);
    EXPECT_LT(mean, hi);
}

TEST(TaskGraphGenerator, ValidatesParams) {
    TaskGraphGenParams p;
    p.min_tasks = 0;
    EXPECT_THROW(TaskGraphGenerator{p}, RequireError);
    p = TaskGraphGenParams{};
    p.max_tasks = p.min_tasks - 1;
    EXPECT_THROW(TaskGraphGenerator{p}, RequireError);
    p = TaskGraphGenParams{};
    p.min_cycles = 10;
    p.max_cycles = 5;
    EXPECT_THROW(TaskGraphGenerator{p}, RequireError);
    p = TaskGraphGenParams{};
    p.max_fanin = 0;
    EXPECT_THROW(TaskGraphGenerator{p}, RequireError);
}

TEST(WorkloadGenerator, ArrivalsOrderedAndBeforeHorizon) {
    WorkloadParams p;
    p.arrival_rate_hz = 100.0;
    WorkloadGenerator gen(p, 42);
    const auto apps = gen.generate(seconds(5));
    ASSERT_FALSE(apps.empty());
    SimTime prev = 0;
    for (const auto& a : apps) {
        EXPECT_GE(a.arrival, prev);
        EXPECT_LT(a.arrival, seconds(5));
        prev = a.arrival;
    }
}

TEST(WorkloadGenerator, UniqueIncreasingIds) {
    WorkloadParams p;
    p.arrival_rate_hz = 50.0;
    WorkloadGenerator gen(p, 1);
    const auto apps = gen.generate(seconds(2));
    for (std::size_t i = 1; i < apps.size(); ++i) {
        EXPECT_EQ(apps[i].id, apps[i - 1].id + 1);
    }
}

TEST(WorkloadGenerator, RateApproximatelyHonored) {
    WorkloadParams p;
    p.arrival_rate_hz = 200.0;
    WorkloadGenerator gen(p, 7);
    const auto apps = gen.generate(seconds(20));
    // 4000 expected; Poisson sd ~ 63.
    EXPECT_NEAR(static_cast<double>(apps.size()), 4000.0, 250.0);
}

TEST(WorkloadGenerator, DeterministicBySeed) {
    WorkloadParams p;
    WorkloadGenerator a(p, 99), b(p, 99), c(p, 100);
    const auto wa = a.generate(seconds(1));
    const auto wb = b.generate(seconds(1));
    const auto wc = c.generate(seconds(1));
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i) {
        EXPECT_EQ(wa[i].arrival, wb[i].arrival);
        EXPECT_EQ(wa[i].graph.total_cycles(), wb[i].graph.total_cycles());
    }
    // Different seed -> different trace (with overwhelming probability).
    bool differs = wc.size() != wa.size();
    for (std::size_t i = 0; !differs && i < std::min(wa.size(), wc.size());
         ++i) {
        differs = wa[i].arrival != wc[i].arrival;
    }
    EXPECT_TRUE(differs);
}

TEST(WorkloadGenerator, OfferedUtilizationScalesWithRate) {
    WorkloadParams p;
    p.arrival_rate_hz = 100.0;
    const double u1 = WorkloadGenerator::offered_utilization(p, 1.6e11);
    p.arrival_rate_hz = 200.0;
    const double u2 = WorkloadGenerator::offered_utilization(p, 1.6e11);
    EXPECT_NEAR(u2 / u1, 2.0, 1e-9);
}

TEST(WorkloadGenerator, RateForUtilizationRoundTrips) {
    TaskGraphGenParams graphs;
    const double capacity = 1.6e11;
    const double rate =
        WorkloadGenerator::rate_for_utilization(0.5, graphs, capacity);
    WorkloadParams p;
    p.arrival_rate_hz = rate;
    p.graphs = graphs;
    EXPECT_NEAR(WorkloadGenerator::offered_utilization(p, capacity), 0.5,
                1e-6);
}

TEST(WorkloadGenerator, RejectsNonPositiveRate) {
    WorkloadParams p;
    p.arrival_rate_hz = 0.0;
    EXPECT_THROW(WorkloadGenerator(p, 1), RequireError);
}

}  // namespace
}  // namespace mcs
