#include "arch/technology.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

TEST(Technology, AllNodesNamed) {
    EXPECT_STREQ(to_string(TechNode::nm45), "45nm");
    EXPECT_STREQ(to_string(TechNode::nm32), "32nm");
    EXPECT_STREQ(to_string(TechNode::nm22), "22nm");
    EXPECT_STREQ(to_string(TechNode::nm16), "16nm");
}

TEST(Technology, DarkSiliconFractionShrinksWithNode) {
    // The defining trend: the usable fraction of peak chip power falls with
    // each technology generation.
    EXPECT_GT(technology(TechNode::nm45).tdp_fraction,
              technology(TechNode::nm32).tdp_fraction);
    EXPECT_GT(technology(TechNode::nm32).tdp_fraction,
              technology(TechNode::nm22).tdp_fraction);
    EXPECT_GT(technology(TechNode::nm22).tdp_fraction,
              technology(TechNode::nm16).tdp_fraction);
}

TEST(Technology, FrequencyRisesCapacitanceFalls) {
    EXPECT_LT(technology(TechNode::nm45).max_freq_hz,
              technology(TechNode::nm16).max_freq_hz);
    EXPECT_GT(technology(TechNode::nm45).switched_cap_f,
              technology(TechNode::nm16).switched_cap_f);
    EXPECT_GT(technology(TechNode::nm45).nominal_vdd_v,
              technology(TechNode::nm16).nominal_vdd_v);
}

TEST(Technology, LeakageShareGrowsWithScaling) {
    // Leakage current grows while dynamic capacitance shrinks: the leakage
    // share of core peak power must increase toward 16 nm.
    auto leak_share = [](TechNode n) {
        const auto& t = technology(n);
        const double leak = t.leak_current_a * t.nominal_vdd_v;
        return leak / t.core_peak_power_w();
    };
    EXPECT_LT(leak_share(TechNode::nm45), leak_share(TechNode::nm16));
}

TEST(Technology, CorePeakPowerIsPlausible) {
    for (TechNode n : {TechNode::nm45, TechNode::nm32, TechNode::nm22,
                       TechNode::nm16}) {
        const double p = technology(n).core_peak_power_w();
        EXPECT_GT(p, 0.3) << to_string(n);
        EXPECT_LT(p, 5.0) << to_string(n);
    }
}

TEST(Technology, ChipTdpScalesWithCoreCount) {
    const auto& t = technology(TechNode::nm16);
    EXPECT_DOUBLE_EQ(t.chip_tdp_w(128), 2.0 * t.chip_tdp_w(64));
    EXPECT_LT(t.chip_tdp_w(64), 64.0 * t.core_peak_power_w());
}

TEST(VfTable, CoversRangeMonotonically) {
    const auto& t = technology(TechNode::nm16);
    const auto table = build_vf_table(t);
    ASSERT_EQ(table.size(), static_cast<std::size_t>(t.vf_levels));
    EXPECT_DOUBLE_EQ(table.front().freq_hz, t.min_freq_hz);
    EXPECT_DOUBLE_EQ(table.front().voltage_v, t.min_vdd_v);
    EXPECT_DOUBLE_EQ(table.back().freq_hz, t.max_freq_hz);
    EXPECT_DOUBLE_EQ(table.back().voltage_v, t.nominal_vdd_v);
    for (std::size_t i = 1; i < table.size(); ++i) {
        EXPECT_GT(table[i].freq_hz, table[i - 1].freq_hz);
        EXPECT_GT(table[i].voltage_v, table[i - 1].voltage_v);
    }
}

TEST(VfTable, RejectsDegenerateParams) {
    TechnologyParams t = technology(TechNode::nm16);
    t.vf_levels = 1;
    EXPECT_THROW(build_vf_table(t), RequireError);
    t = technology(TechNode::nm16);
    t.min_freq_hz = t.max_freq_hz;
    EXPECT_THROW(build_vf_table(t), RequireError);
    t = technology(TechNode::nm16);
    t.min_vdd_v = t.nominal_vdd_v;
    EXPECT_THROW(build_vf_table(t), RequireError);
}

// Parameterized: every node builds a valid table.
class VfTableAllNodes : public ::testing::TestWithParam<TechNode> {};

TEST_P(VfTableAllNodes, TableIsValid) {
    const auto& t = technology(GetParam());
    const auto table = build_vf_table(t);
    for (const auto& level : table) {
        EXPECT_GT(level.freq_hz, 0.0);
        EXPECT_GT(level.voltage_v, 0.0);
        EXPECT_LE(level.voltage_v, t.nominal_vdd_v);
        EXPECT_LE(level.freq_hz, t.max_freq_hz);
    }
}

INSTANTIATE_TEST_SUITE_P(Nodes, VfTableAllNodes,
                         ::testing::Values(TechNode::nm45, TechNode::nm32,
                                           TechNode::nm22, TechNode::nm16));

}  // namespace
}  // namespace mcs
