#include "util/stats.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mcs {
namespace {

TEST(RunningStats, EmptyIsZero) {
    RunningStats s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, KnownValues) {
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
        s.add(x);
    }
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(s.mean(), 3.5);
}

TEST(RunningStats, NegativeValues) {
    RunningStats s;
    s.add(-5.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), -5.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, MergeMatchesSequential) {
    Rng rng(5);
    RunningStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.normal(3.0, 2.0);
        all.add(x);
        (i % 3 == 0 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a, b;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(b);  // no-op
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    b.merge(a);  // copy
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Histogram, BasicBinning) {
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(3.0);   // bin 1
    h.add(9.99);  // bin 4
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(1), 1u);
    EXPECT_EQ(h.bin_count(4), 1u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderOverflowClampedToEdgeBins) {
    Histogram h(0.0, 10.0, 5);
    h.add(-1.0);
    h.add(15.0);
    h.add(10.0);  // hi edge is exclusive -> overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(4), 2u);
}

TEST(Histogram, BinEdges) {
    Histogram h(10.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.5);
    EXPECT_DOUBLE_EQ(h.bin_lo(3), 17.5);
    EXPECT_DOUBLE_EQ(h.bin_hi(3), 20.0);
    EXPECT_THROW(h.bin_count(4), RequireError);
}

TEST(Histogram, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), RequireError);
    EXPECT_THROW(Histogram(2.0, 1.0, 4), RequireError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), RequireError);
}

TEST(SampleSet, Quantiles) {
    SampleSet s;
    for (int i = 1; i <= 100; ++i) {
        s.add(static_cast<double>(i));
    }
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
    EXPECT_NEAR(s.median(), 50.5, 1e-9);
    EXPECT_NEAR(s.quantile(0.95), 95.05, 0.01);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 100.0);
    EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(SampleSet, AddAfterQuantileStillCorrect) {
    SampleSet s;
    s.add(5.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.median(), 3.0);
    s.add(100.0);  // re-sorts lazily
    EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(SampleSet, EmptyThrows) {
    SampleSet s;
    EXPECT_THROW(s.quantile(0.5), RequireError);
    EXPECT_THROW(s.mean(), RequireError);
    EXPECT_THROW(s.min(), RequireError);
}

TEST(SampleSet, QuantileRangeChecked) {
    SampleSet s;
    s.add(1.0);
    EXPECT_THROW(s.quantile(-0.1), RequireError);
    EXPECT_THROW(s.quantile(1.1), RequireError);
}

TEST(TimeWeightedStat, PiecewiseConstantAverage) {
    TimeWeightedStat t;
    t.update(0, 1.0);    // value 1.0 from t=0
    t.update(10, 3.0);   // value 1.0 held over [0,10), now 3.0
    t.update(20, 0.0);   // value 3.0 held over [10,20)
    // average = (1*10 + 3*10) / 20 = 2.0
    EXPECT_DOUBLE_EQ(t.average(), 2.0);
    EXPECT_EQ(t.elapsed(), 20u);
}

TEST(TimeWeightedStat, NoElapsedTimeReturnsLastValue) {
    TimeWeightedStat t;
    t.update(5, 7.0);
    EXPECT_DOUBLE_EQ(t.average(), 7.0);
    EXPECT_EQ(t.elapsed(), 0u);
}

TEST(TimeWeightedStat, RejectsBackwardsTime) {
    TimeWeightedStat t;
    t.update(10, 1.0);
    EXPECT_THROW(t.update(5, 2.0), RequireError);
}

TEST(TimeWeightedStat, ZeroDurationUpdateKeepsAverage) {
    TimeWeightedStat t;
    t.update(0, 4.0);
    t.update(10, 2.0);
    t.update(10, 9.0);  // instantaneous change
    t.update(20, 0.0);
    // [0,10): 4, [10,20): 9 -> avg 6.5
    EXPECT_DOUBLE_EQ(t.average(), 6.5);
}

}  // namespace
}  // namespace mcs
