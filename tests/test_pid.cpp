#include "power/pid_controller.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace mcs {
namespace {

TEST(Pid, ProportionalResponse) {
    PidParams p;
    p.kp = 2.0;
    p.ki = 0.0;
    p.kd = 0.0;
    p.out_min = -10.0;
    p.out_max = 10.0;
    PidController pid(p);
    EXPECT_NEAR(pid.update(1.0, 0.1), 2.0, 1e-12);
    EXPECT_NEAR(pid.update(-0.5, 0.1), -1.0, 1e-12);
}

TEST(Pid, OutputClamped) {
    PidParams p;
    p.kp = 100.0;
    p.ki = 0.0;
    p.kd = 0.0;
    PidController pid(p);
    EXPECT_DOUBLE_EQ(pid.update(1.0, 0.1), p.out_max);
    EXPECT_DOUBLE_EQ(pid.update(-1.0, 0.1), p.out_min);
}

TEST(Pid, IntegralAccumulates) {
    PidParams p;
    p.kp = 0.0;
    p.ki = 1.0;
    p.kd = 0.0;
    p.integral_limit = 100.0;
    p.out_min = -100.0;
    p.out_max = 100.0;
    PidController pid(p);
    double out = 0.0;
    for (int i = 0; i < 10; ++i) {
        out = pid.update(1.0, 0.5);
    }
    EXPECT_NEAR(out, 5.0, 1e-12);  // 10 steps * 1.0 * 0.5s
}

TEST(Pid, AntiWindupClampsIntegral) {
    PidParams p;
    p.kp = 0.0;
    p.ki = 1.0;
    p.kd = 0.0;
    p.integral_limit = 2.0;
    p.out_min = -100.0;
    p.out_max = 100.0;
    PidController pid(p);
    for (int i = 0; i < 100; ++i) {
        pid.update(1.0, 1.0);
    }
    EXPECT_DOUBLE_EQ(pid.last_output(), 2.0);  // saturated at the clamp
    // Recovery is immediate once errors flip, because the integral never
    // wound past the clamp.
    pid.update(-1.0, 1.0);
    EXPECT_LE(pid.last_output(), 1.0);
}

TEST(Pid, DerivativeRespondsToChange) {
    PidParams p;
    p.kp = 0.0;
    p.ki = 0.0;
    p.kd = 1.0;
    p.out_min = -100.0;
    p.out_max = 100.0;
    PidController pid(p);
    // First update has no derivative (no previous error).
    EXPECT_DOUBLE_EQ(pid.update(1.0, 0.5), 0.0);
    // Error jumps by +1 over 0.5s -> derivative 2.
    EXPECT_NEAR(pid.update(2.0, 0.5), 2.0, 1e-12);
    // Constant error -> derivative 0.
    EXPECT_NEAR(pid.update(2.0, 0.5), 0.0, 1e-12);
}

TEST(Pid, ResetClearsState) {
    PidParams p;
    p.kp = 0.0;
    p.ki = 1.0;
    p.kd = 1.0;
    p.integral_limit = 100.0;
    p.out_min = -100.0;
    p.out_max = 100.0;
    PidController pid(p);
    pid.update(5.0, 1.0);
    pid.update(5.0, 1.0);
    pid.reset();
    EXPECT_DOUBLE_EQ(pid.last_output(), 0.0);
    // After reset the derivative term is suppressed again.
    EXPECT_DOUBLE_EQ(pid.update(3.0, 1.0), 3.0);  // integral only: 3*1
}

TEST(Pid, DefaultsConvergeOnStepDisturbance) {
    // Simulate a crude plant: power deficit shrinks proportionally to the
    // controller output; the loop must converge to ~zero error without
    // oscillating to the clamps (regression for the derivative-blowup bug
    // with dt = 1e-4).
    PidController pid(PidParams{});
    double error = 0.5;
    int clamped = 0;
    for (int i = 0; i < 2000; ++i) {
        const double u = pid.update(error, 1e-4);
        if (u >= 1.0 || u <= -1.0) {
            ++clamped;
        }
        error -= 0.02 * u;  // plant response
    }
    EXPECT_NEAR(error, 0.0, 0.05);
    EXPECT_LT(clamped, 100);
}

TEST(Pid, InvalidParamsThrow) {
    PidParams p;
    p.out_min = 1.0;
    p.out_max = -1.0;
    EXPECT_THROW(PidController{p}, RequireError);
    PidParams q;
    q.integral_limit = -1.0;
    EXPECT_THROW(PidController{q}, RequireError);
    PidController ok{PidParams{}};
    EXPECT_THROW(ok.update(0.0, 0.0), RequireError);
}

}  // namespace
}  // namespace mcs
