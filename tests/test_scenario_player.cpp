#include "scenario/scenario_player.hpp"

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/platform_engine.hpp"
#include "core/system.hpp"
#include "core/test_engine.hpp"
#include "core/workload_engine.hpp"
#include "power/power_manager.hpp"
#include "sim/simulator.hpp"
#include "support/differential.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

using testsupport::CheckpointPlan;
using testsupport::RunArtifacts;
using testsupport::TempFile;

/// 4x4 differential platform (mirrors test_snapshot's baseline).
SystemConfig mini_config(std::uint64_t seed = 42) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = seed;
    cfg.enable_fault_injection = true;
    cfg.workload.graphs.min_tasks = 2;
    cfg.workload.graphs.max_tasks = 6;
    const double capacity = 16.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(0.5, cfg.workload.graphs, capacity);
    return cfg;
}

/// Inline spec hitting every restore-relevant directive class on a 4x4
/// chip inside a 600 ms horizon: a burst (reinject path), a budget cut
/// (reapply path), and state-bearing seam calls in between.
ScenarioSpec mini_spec() {
    return parse_scenario_text(
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"mini\","
        "\"directives\":["
        "{\"at_us\":150000,\"kind\":\"arrival-burst\",\"apps\":4,"
        "\"tasks\":4,\"qos\":\"soft-RT\"},"
        "{\"at_us\":250000,\"kind\":\"set-budget\",\"tdp_scale\":0.7},"
        "{\"at_us\":350000,\"kind\":\"abort-tests\"},"
        "{\"at_us\":450000,\"kind\":\"set-vf\",\"level\":1},"
        "{\"at_us\":500000,\"kind\":\"inject-wear\",\"cores\":[0,1,5],"
        "\"damage\":0.05},"
        "{\"at_us\":550000,\"kind\":\"inject-fault\",\"core\":2,"
        "\"unit\":\"ALU\",\"fault\":\"stuck-at\"}]}");
}

constexpr SimDuration kMiniHorizon = 600 * kMillisecond;

/// One scenario-driven run through the real ScenarioPlayer.
RunArtifacts run_scenario(const SystemConfig& cfg, const ScenarioSpec& spec,
                          SimDuration horizon,
                          const std::vector<CheckpointPlan>& checkpoints = {}) {
    ManycoreSystem sys(cfg);
    telemetry::Tracer tracer(testsupport::kTraceCapacity);
    sys.set_tracer(&tracer);
    sys.attach_scenario(std::make_unique<ScenarioPlayer>(spec));
    for (const CheckpointPlan& cp : checkpoints) {
        sys.checkpoint_at(cp.at, cp.path);
    }
    return testsupport::capture(sys, tracer, horizon);
}

/// Restored continuation of a scenario run: same spec attached, then the
/// snapshot reloaded (attachment must precede restore).
RunArtifacts run_scenario_restored(const SystemConfig& cfg,
                                   const ScenarioSpec& spec,
                                   const std::string& snapshot_path) {
    ManycoreSystem sys(cfg);
    telemetry::Tracer tracer(testsupport::kTraceCapacity);
    sys.set_tracer(&tracer);
    sys.attach_scenario(std::make_unique<ScenarioPlayer>(spec));
    sys.restore(load_snapshot_file(snapshot_path));
    return testsupport::capture(sys, tracer, sys.restored_horizon());
}

/// The differential reference: a driver that hand-issues the exact same
/// engine-seam calls the ScenarioPlayer makes, through its own chained
/// calendar events. Burst applications come from an embedded player (the
/// generator is part of the scenario contract); every other seam call is
/// spelled out explicitly. Byte-identical artifacts prove the player adds
/// nothing beyond the documented seam sequence.
class HandDriver final : public ScenarioDriver {
public:
    explicit HandDriver(ScenarioSpec spec) : player_(std::move(spec)) {}

    void bind(ManycoreSystem& sys) override {
        sys_ = &sys;
        orig_tdp_w_ = sys.budget().tdp_w();
        player_.bind(sys);
    }

    void begin(SimDuration /*horizon*/) override { schedule(0); }

    // This leg never checkpoints; any snapshot hook firing is a test bug.
    void append_event_manifest(std::vector<SnapshotEvent>&) const override {
        MCS_REQUIRE(false, "hand-driven leg must not snapshot");
    }
    void save_state(telemetry::JsonWriter&) const override {
        MCS_REQUIRE(false, "hand-driven leg must not snapshot");
    }
    void load_state(const telemetry::JsonValue&) override {
        MCS_REQUIRE(false, "hand-driven leg must not restore");
    }
    void reinject_restored() override {
        MCS_REQUIRE(false, "hand-driven leg must not restore");
    }
    void reapply_restored() override {
        MCS_REQUIRE(false, "hand-driven leg must not restore");
    }
    void schedule_restored_directive(std::uint64_t, SimTime) override {
        MCS_REQUIRE(false, "hand-driven leg must not restore");
    }

private:
    const ScenarioSpec& spec() const { return player_.spec(); }

    void schedule(std::size_t i) {
        sys_->simulator().schedule_at(spec().directives[i].at, [this, i] {
            apply_by_hand(i);
            if (i + 1 < spec().directives.size()) {
                schedule(i + 1);
            }
        });
    }

    std::vector<CoreId> targets_of(const ScenarioDirective& d) const {
        if (!d.cores.empty()) {
            return d.cores;
        }
        std::vector<CoreId> all(sys_->chip().core_count());
        for (CoreId id = 0; id < all.size(); ++id) {
            all[id] = id;
        }
        return all;
    }

    void apply_by_hand(std::size_t i) {
        const ScenarioDirective& d = spec().directives[i];
        const SimTime now = sys_->simulator().now();
        switch (d.kind) {
            case DirectiveKind::ArrivalBurst: {
                WorkloadEngine& workload = sys_->workload_engine();
                for (ApplicationSpec& spec : player_.burst_apps(i)) {
                    workload.on_arrival(workload.inject(std::move(spec)));
                }
                break;
            }
            case DirectiveKind::AbortTests: {
                TestEngine& test = sys_->test_engine();
                for (const CoreId id : targets_of(d)) {
                    if (test.test_active(id)) {
                        test.abort_test(id);
                    }
                }
                break;
            }
            case DirectiveKind::InvalidateProgress: {
                TestEngine& test = sys_->test_engine();
                for (const CoreId id : targets_of(d)) {
                    test.invalidate_progress(id);
                }
                break;
            }
            case DirectiveKind::InjectFault:
                (void)sys_->platform_engine().force_fault(d.core, d.unit,
                                                          d.fault);
                break;
            case DirectiveKind::InjectWear: {
                const std::vector<CoreId> cores = targets_of(d);
                sys_->platform_engine().inject_wear(cores, d.damage);
                break;
            }
            case DirectiveKind::SetBudget:
                sys_->budget().set_tdp(orig_tdp_w_ * d.tdp_scale);
                break;
            case DirectiveKind::SetVf: {
                PowerManager& pm = sys_->platform_engine().power_manager();
                for (const CoreId id : targets_of(d)) {
                    const Core& c = sys_->chip().core(id);
                    if ((c.state() == CoreState::Idle ||
                         c.state() == CoreState::Busy) &&
                        c.vf_level() != d.vf_level) {
                        pm.force_vf(now, id, d.vf_level);
                    }
                }
                break;
            }
        }
    }

    ScenarioPlayer player_;  ///< bound but never begun: burst_apps only
    ManycoreSystem* sys_ = nullptr;
    double orig_tdp_w_ = 0.0;
};

RunArtifacts run_hand_driven(const SystemConfig& cfg,
                             const ScenarioSpec& spec, SimDuration horizon) {
    ManycoreSystem sys(cfg);
    telemetry::Tracer tracer(testsupport::kTraceCapacity);
    sys.set_tracer(&tracer);
    sys.attach_scenario(std::make_unique<HandDriver>(spec));
    return testsupport::capture(sys, tracer, horizon);
}

void expect_identical(const RunArtifacts& got, const RunArtifacts& want,
                      const std::string& label) {
    EXPECT_EQ(got.report, want.report) << label << ": run report drifted";
    EXPECT_EQ(got.trace, want.trace) << label << ": event trace drifted";
    EXPECT_EQ(got.registry, want.registry)
        << label << ": metrics registry drifted";
}

// ----------------------------------------------------- differential legs

TEST(ScenarioPlayer, MatchesHandDrivenSeamCalls) {
    const ScenarioSpec spec = mini_spec();
    const SystemConfig cfg = mini_config();
    const RunArtifacts played = run_scenario(cfg, spec, kMiniHorizon);
    const RunArtifacts hand = run_hand_driven(cfg, spec, kMiniHorizon);
    expect_identical(played, hand, "player-vs-hand");
}

TEST(ScenarioPlayer, MatchesHandDrivenOnCorpus) {
    // The committed corpus targets the full 8x8 chip; moderate load keeps
    // six 1.6 s replays affordable.
    SystemConfig cfg;
    cfg.seed = 7;
    cfg.enable_fault_injection = true;
    const double capacity = 64.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz =
        rate_for_occupancy(0.2, cfg.workload.graphs, capacity);
    const SimDuration horizon = 1600 * kMillisecond;
    for (const char* name :
         {"burst_at_budget_edge", "abort_cascade", "budget_cut",
          "vf_throttle_step", "wear_acceleration", "combined_stress"}) {
        const ScenarioSpec spec = load_scenario_file(
            std::string(MCS_SOURCE_DIR) + "/examples/scenarios/" + name +
            ".json");
        expect_identical(run_scenario(cfg, spec, horizon),
                         run_hand_driven(cfg, spec, horizon), name);
    }
}

TEST(ScenarioPlayer, ByteIdenticalAcrossEpochWorkers) {
    const ScenarioSpec spec = mini_spec();
    for (const SchedulerKind kind :
         {SchedulerKind::PowerAware, SchedulerKind::Periodic,
          SchedulerKind::Greedy, SchedulerKind::None,
          SchedulerKind::DeadlineAware}) {
        SystemConfig cfg = mini_config(11);
        cfg.scheduler = kind;
        cfg.periodic_test_period = 100 * kMillisecond;
        const RunArtifacts ref = run_scenario(cfg, spec, kMiniHorizon);
        for (const int workers : {2, 8}) {
            SystemConfig wcfg = cfg;
            wcfg.epoch_workers = workers;
            expect_identical(run_scenario(wcfg, spec, kMiniHorizon), ref,
                             std::string(to_string(kind)) + "/workers-" +
                                 std::to_string(workers));
        }
    }
}

TEST(ScenarioPlayer, CheckpointMidScenarioRestoresByteIdentical) {
    const ScenarioSpec spec = mini_spec();
    for (const SchedulerKind kind :
         {SchedulerKind::PowerAware, SchedulerKind::Periodic,
          SchedulerKind::Greedy, SchedulerKind::None,
          SchedulerKind::DeadlineAware}) {
        SystemConfig cfg = mini_config(5);
        cfg.scheduler = kind;
        cfg.periodic_test_period = 100 * kMillisecond;
        const std::string label = to_string(kind);
        const RunArtifacts fresh = run_scenario(cfg, spec, kMiniHorizon);

        // Checkpoints straddle the directive list: after the burst (the
        // reinject path) and after budget/VF/wear (the reapply path).
        TempFile early("scenario_cp_early"), late("scenario_cp_late");
        const std::vector<CheckpointPlan> plans = {
            {200 * kMillisecond, early.path()},
            {520 * kMillisecond, late.path()},
        };
        expect_identical(run_scenario(cfg, spec, kMiniHorizon, plans),
                         fresh, label + "/interrupted");
        expect_identical(run_scenario_restored(cfg, spec, early.path()),
                         fresh, label + "/restored-early");
        expect_identical(run_scenario_restored(cfg, spec, late.path()),
                         fresh, label + "/restored-late");
    }
}

TEST(ScenarioPlayer, BurstAppsAreDeterministic) {
    const ScenarioSpec spec = mini_spec();
    ManycoreSystem a(mini_config()), b(mini_config());
    ScenarioPlayer pa(spec), pb(spec);
    pa.bind(a);
    pb.bind(b);
    const auto apps_a = pa.burst_apps(0);
    const auto apps_b = pb.burst_apps(0);
    ASSERT_EQ(apps_a.size(), 4u);
    ASSERT_EQ(apps_b.size(), apps_a.size());
    for (std::size_t i = 0; i < apps_a.size(); ++i) {
        EXPECT_EQ(apps_a[i].id, apps_b[i].id);
        EXPECT_GE(apps_a[i].id, std::uint64_t{1} << 40);
        EXPECT_EQ(apps_a[i].arrival, 150 * kMillisecond);
        EXPECT_EQ(apps_a[i].qos, QosClass::SoftRealTime);
        EXPECT_GT(apps_a[i].relative_deadline, 0u);
        EXPECT_EQ(apps_a[i].relative_deadline, apps_b[i].relative_deadline);
        EXPECT_EQ(apps_a[i].graph.size(), 4u);
    }
}

// ---------------------------------------------------------------- guards

TEST(ScenarioPlayer, LifecycleGuards) {
    const ScenarioSpec spec = mini_spec();
    // At most one driver, only before run/restore.
    {
        ManycoreSystem sys(mini_config());
        sys.attach_scenario(std::make_unique<ScenarioPlayer>(spec));
        EXPECT_THROW(
            sys.attach_scenario(std::make_unique<ScenarioPlayer>(spec)),
            RequireError);
    }
    {
        ManycoreSystem sys(mini_config());
        sys.run(100 * kMillisecond);
        EXPECT_THROW(
            sys.attach_scenario(std::make_unique<ScenarioPlayer>(spec)),
            RequireError);
    }
    // The last directive must fire strictly inside the horizon.
    {
        ManycoreSystem sys(mini_config());
        sys.attach_scenario(std::make_unique<ScenarioPlayer>(spec));
        EXPECT_THROW(sys.run(550 * kMillisecond), RequireError);
    }
}

TEST(ScenarioPlayer, BindValidatesAgainstTheChip) {
    // Core 16 does not exist on a 4x4 chip.
    const ScenarioSpec bad_core = parse_scenario_text(
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"bad\",\"directives\":["
        "{\"at_us\":1000,\"kind\":\"abort-tests\",\"cores\":[16]}]}");
    ManycoreSystem sys(mini_config());
    EXPECT_THROW(
        sys.attach_scenario(std::make_unique<ScenarioPlayer>(bad_core)),
        RequireError);

    // V/F level past the technology table.
    const ScenarioSpec bad_level = parse_scenario_text(
        "{\"schema\":\"mcs.scenario.v1\",\"name\":\"bad\",\"directives\":["
        "{\"at_us\":1000,\"kind\":\"set-vf\",\"level\":64}]}");
    ManycoreSystem sys2(mini_config());
    EXPECT_THROW(
        sys2.attach_scenario(std::make_unique<ScenarioPlayer>(bad_level)),
        RequireError);
}

TEST(ScenarioPlayer, RestoreGuards) {
    const ScenarioSpec spec = mini_spec();
    const SystemConfig cfg = mini_config();
    TempFile snap("scenario_restore_guard");
    run_scenario(cfg, spec, kMiniHorizon,
                 {{300 * kMillisecond, snap.path()}});

    // A scenario snapshot cannot be restored without the scenario.
    {
        ManycoreSystem sys(cfg);
        EXPECT_THROW(sys.restore(load_snapshot_file(snap.path())),
                     RequireError);
    }
    // ...nor under a different spec (fingerprint mismatch).
    {
        ScenarioSpec other = spec;
        other.directives[0].apps += 1;
        ManycoreSystem sys(cfg);
        sys.attach_scenario(std::make_unique<ScenarioPlayer>(other));
        EXPECT_THROW(sys.restore(load_snapshot_file(snap.path())),
                     RequireError);
    }
    // ...and a plain snapshot rejects an attached scenario.
    {
        TempFile plain("scenario_plain_guard");
        testsupport::run_reference(cfg, kMiniHorizon,
                                   {{300 * kMillisecond, plain.path()}});
        ManycoreSystem sys(cfg);
        sys.attach_scenario(std::make_unique<ScenarioPlayer>(spec));
        EXPECT_THROW(sys.restore(load_snapshot_file(plain.path())),
                     RequireError);
    }
}

}  // namespace
}  // namespace mcs
