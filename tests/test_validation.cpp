// Simulator validation against closed-form expectations: configurations
// simple enough that queueing/utilization theory predicts the outcome.

#include <gtest/gtest.h>

#include "core/system.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

// Single-task applications, light load, huge power budget: the system is an
// M/G/64 queue far from saturation, so measured utilization must equal
// offered load and practically no application should wait.
TEST(Validation, LightLoadMatchesOfferedUtilization) {
    SystemConfig cfg;
    cfg.seed = 5;
    cfg.tdp_scale = 10.0;  // power never binds
    cfg.workload.graphs.min_tasks = 1;
    cfg.workload.graphs.max_tasks = 1;
    const double capacity = 64.0 * technology(cfg.node).max_freq_hz;
    const double target = 0.25;
    cfg.workload.arrival_rate_hz = WorkloadGenerator::rate_for_utilization(
        target, cfg.workload.graphs, capacity);
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(10 * kSecond);
    // With an unbounded budget, busy cores run at the top level: busy-time
    // utilization equals cycle demand over capacity.
    EXPECT_NEAR(m.mean_chip_utilization, target, 0.02);
    EXPECT_NEAR(m.work_cycles_per_s / capacity, target, 0.02);
    // Far from saturation: queueing is negligible.
    EXPECT_LT(m.app_queue_wait_ms.mean(), 1.0);
    EXPECT_EQ(m.apps_rejected, 0u);
}

// Work conservation: every arrived application's cycles are either retired
// or still in the system; with a drain-friendly horizon the completed
// cycles match the demand of completed apps exactly.
TEST(Validation, RetiredCyclesMatchCompletedDemand) {
    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = 9;
    cfg.tdp_scale = 10.0;
    cfg.workload.graphs.min_tasks = 1;
    cfg.workload.graphs.max_tasks = 3;
    cfg.workload.arrival_rate_hz = 100.0;
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(5 * kSecond);
    // Busy cycles retired >= cycles of completed apps (tasks of in-flight
    // apps add more); and within a small bound of total arrived demand.
    EXPECT_GT(m.work_cycles_per_s, 0.0);
    EXPECT_GE(m.tasks_completed, m.apps_completed);  // >= 1 task per app
}

// Amdahl-style check: a chain-structured application cannot finish faster
// than its critical path at the top frequency.
TEST(Validation, MakespanBoundedByCriticalPath) {
    std::vector<Task> tasks(4);
    for (std::size_t i = 0; i < 4; ++i) {
        tasks[i].cycles = 10'000'000;  // 4 ms at 2.5 GHz
        if (i + 1 < 4) {
            tasks[i].successors = {{static_cast<TaskIndex>(i + 1), 1000}};
        }
    }
    TaskGraph chain(std::move(tasks));
    const double ideal_s =
        static_cast<double>(chain.critical_path_cycles()) / 2.5e9;

    SystemConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    cfg.seed = 13;
    cfg.tdp_scale = 10.0;
    cfg.workload.arrival_rate_hz = 5.0;  // nearly sequential arrivals
    cfg.workload.graph_library.push_back(std::move(chain));
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(4 * kSecond);
    ASSERT_GT(m.app_latency_ms.count(), 0u);
    // No app can beat the critical path; the mean should also be close to
    // it at this trivial load (within 3x for comm + control overheads).
    EXPECT_GE(m.app_latency_ms.min(), ideal_s * 1e3 * 0.999);
    EXPECT_LT(m.app_latency_ms.mean(), ideal_s * 1e3 * 3.0);
}

// Throttled chip: with the budget scaled to a sliver, sustained compute
// must be power-limited well below demand, yet never violate the cap.
TEST(Validation, TinyBudgetThrottlesButHolds) {
    SystemConfig cfg;
    cfg.seed = 17;
    cfg.tdp_scale = 0.4;
    cfg.workload.graphs.min_tasks = 1;
    cfg.workload.graphs.max_tasks = 1;
    const double capacity = 64.0 * technology(cfg.node).max_freq_hz;
    cfg.workload.arrival_rate_hz = WorkloadGenerator::rate_for_utilization(
        0.9, cfg.workload.graphs, capacity);
    ManycoreSystem sys(cfg);
    const RunMetrics m = sys.run(5 * kSecond);
    EXPECT_LT(m.work_cycles_per_s / capacity, 0.6);  // power-limited
    EXPECT_LE(m.max_power_w, m.tdp_w * 1.02);
    EXPECT_LT(m.tdp_violation_rate, 0.001);
}

}  // namespace
}  // namespace mcs
