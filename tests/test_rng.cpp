#include "util/rng.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace mcs {
namespace {

TEST(Rng, SameSeedSameSequence) {
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(a.next_u64(), b.next_u64());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsValid) {
    Rng r(0);
    // Must not be stuck at zero.
    std::uint64_t acc = 0;
    for (int i = 0; i < 16; ++i) {
        acc |= r.next_u64();
    }
    EXPECT_NE(acc, 0u);
}

TEST(Rng, UniformInUnitInterval) {
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf) {
    Rng r(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        sum += r.uniform();
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, UniformRejectsInvertedRange) {
    Rng r(1);
    EXPECT_THROW(r.uniform(2.0, 1.0), RequireError);
}

TEST(Rng, UniformIntInclusiveBounds) {
    Rng r(17);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniform_int(3, 7);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, UniformIntSinglePoint) {
    Rng r(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(r.uniform_int(42, 42), 42);
    }
}

TEST(Rng, UniformIntNegativeRange) {
    Rng r(23);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniform_int(-10, -5);
        ASSERT_GE(v, -10);
        ASSERT_LE(v, -5);
    }
}

TEST(Rng, UniformIntRejectsInvertedRange) {
    Rng r(1);
    EXPECT_THROW(r.uniform_int(5, 4), RequireError);
}

TEST(Rng, IndexWithinBounds) {
    Rng r(29);
    for (int i = 0; i < 1000; ++i) {
        ASSERT_LT(r.index(10), 10u);
    }
    EXPECT_THROW(r.index(0), RequireError);
}

TEST(Rng, BernoulliExtremes) {
    Rng r(31);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency) {
    Rng r(37);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        hits += r.bernoulli(0.3) ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
    Rng r(41);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = r.exponential(2.5);
        ASSERT_GE(v, 0.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
    Rng r(1);
    EXPECT_THROW(r.exponential(0.0), RequireError);
    EXPECT_THROW(r.exponential(-1.0), RequireError);
}

TEST(Rng, NormalMoments) {
    Rng r(43);
    double sum = 0.0, sumsq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(10.0, 2.0);
        sum += v;
        sumsq += v * v;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, CategoricalFollowsWeights) {
    Rng r(71);
    const double weights[] = {0.5, 0.3, 0.2};
    int counts[3] = {0, 0, 0};
    const int n = 60000;
    for (int i = 0; i < n; ++i) {
        ++counts[r.categorical(weights)];
    }
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.5, 0.02);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
    EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.2, 0.02);
}

TEST(Rng, CategoricalZeroWeightNeverPicked) {
    Rng r(73);
    const double weights[] = {0.0, 1.0, 0.0};
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(r.categorical(weights), 1u);
    }
}

TEST(Rng, CategoricalValidation) {
    Rng r(79);
    EXPECT_THROW(r.categorical(std::span<const double>{}), RequireError);
    const double zeros[] = {0.0, 0.0};
    EXPECT_THROW(r.categorical(zeros), RequireError);
    const double negative[] = {1.0, -0.5};
    EXPECT_THROW(r.categorical(negative), RequireError);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng a(47);
    Rng b = a.split();
    // Parent and child should not emit identical sequences.
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next_u64() == b.next_u64()) {
            ++equal;
        }
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
    Rng a(51), b(51);
    Rng ca = a.split();
    Rng cb = b.split();
    for (int i = 0; i < 100; ++i) {
        ASSERT_EQ(ca.next_u64(), cb.next_u64());
    }
}

TEST(Rng, ShuffleIsPermutation) {
    Rng r(53);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    auto sorted = v;
    r.shuffle(std::span<int>(v));
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(Rng, ShuffleActuallyShuffles) {
    Rng r(59);
    std::vector<int> v(100);
    for (int i = 0; i < 100; ++i) {
        v[static_cast<std::size_t>(i)] = i;
    }
    r.shuffle(std::span<int>(v));
    int moved = 0;
    for (int i = 0; i < 100; ++i) {
        if (v[static_cast<std::size_t>(i)] != i) {
            ++moved;
        }
    }
    EXPECT_GT(moved, 80);
}

TEST(Rng, ShuffleEmptyAndSingle) {
    Rng r(61);
    std::vector<int> empty;
    r.shuffle(std::span<int>(empty));  // must not crash
    std::vector<int> one{5};
    r.shuffle(std::span<int>(one));
    EXPECT_EQ(one[0], 5);
}

// Property sweep: uniform_int stays unbiased over many ranges.
class RngRangeTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(RngRangeTest, UniformIntMeanMatchesMidpoint) {
    const std::int64_t hi = GetParam();
    Rng r(static_cast<std::uint64_t>(hi) * 977 + 1);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        sum += static_cast<double>(r.uniform_int(0, hi));
    }
    const double mid = static_cast<double>(hi) / 2.0;
    EXPECT_NEAR(sum / n, mid, std::max(0.5, mid * 0.05));
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngRangeTest,
                         ::testing::Values<std::int64_t>(1, 2, 7, 100, 1000,
                                                         1 << 20));

}  // namespace
}  // namespace mcs
