#include "app/graph_io.hpp"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "app/workload.hpp"
#include "util/require.hpp"

namespace mcs {
namespace {

TEST(GraphIo, ParsesWellFormedGraph) {
    std::istringstream in(R"(# a diamond
tasks 4
task 0 100
task 1 200
task 2 50
task 3 300
edge 0 1 10
edge 0 2 20
edge 1 3 30
edge 2 3 40
)");
    const TaskGraph g = read_task_graph(in);
    EXPECT_EQ(g.size(), 4u);
    EXPECT_EQ(g.total_cycles(), 650u);
    EXPECT_EQ(g.edge_count(), 4u);
    EXPECT_EQ(g.critical_path_cycles(), 600u);
}

TEST(GraphIo, IgnoresCommentsAndBlankLines) {
    std::istringstream in(
        "\n# header\ntasks 1  # trailing comment\n\ntask 0 42\n\n");
    const TaskGraph g = read_task_graph(in);
    EXPECT_EQ(g.size(), 1u);
    EXPECT_EQ(g.task(0).cycles, 42u);
}

TEST(GraphIo, RoundTripsRandomGraphs) {
    TaskGraphGenerator gen;
    Rng rng(99);
    for (int i = 0; i < 20; ++i) {
        const TaskGraph original = gen.generate(rng);
        std::stringstream buffer;
        write_task_graph(original, buffer);
        const TaskGraph loaded = read_task_graph(buffer);
        ASSERT_EQ(loaded.size(), original.size());
        ASSERT_EQ(loaded.total_cycles(), original.total_cycles());
        ASSERT_EQ(loaded.total_comm_bytes(), original.total_comm_bytes());
        ASSERT_EQ(loaded.edge_count(), original.edge_count());
        ASSERT_EQ(loaded.critical_path_cycles(),
                  original.critical_path_cycles());
    }
}

TEST(GraphIo, FileRoundTrip) {
    const std::string path = ::testing::TempDir() + "/mcs_graph_test.tg";
    TaskGraphGenerator gen;
    Rng rng(7);
    const TaskGraph g = gen.generate(rng);
    save_task_graph(g, path);
    const TaskGraph loaded = load_task_graph(path);
    EXPECT_EQ(loaded.total_cycles(), g.total_cycles());
    std::remove(path.c_str());
}

TEST(GraphIo, MissingFileThrows) {
    EXPECT_THROW(load_task_graph("/nonexistent-dir/nope.tg"), RequireError);
}

TEST(GraphIo, RejectsMalformedInput) {
    auto reject = [](const char* text) {
        std::istringstream in(text);
        EXPECT_THROW(read_task_graph(in), RequireError) << text;
    };
    reject("");                                    // no tasks directive
    reject("task 0 10\n");                         // task before tasks
    reject("tasks 0\n");                           // empty graph
    reject("tasks 2\ntask 0 10\n");                // task 1 undeclared
    reject("tasks 1\ntask 0 10\ntask 0 20\n");     // duplicate task
    reject("tasks 1\ntask 5 10\n");                // index out of range
    reject("tasks 1\ntask 0 0\n");                 // zero cycles
    reject("tasks 1\ntask 0 10\nedge 0 5 1\n");    // edge out of range
    reject("tasks 1\ntask 0 10\nbogus 1 2\n");     // unknown directive
    reject("tasks 1\ntasks 1\ntask 0 10\n");       // duplicate tasks
    reject("tasks x\n");                           // malformed count
    // Cycle: caught by TaskGraph validation.
    reject("tasks 2\ntask 0 1\ntask 1 1\nedge 0 1 1\nedge 1 0 1\n");
}

TEST(GraphIo, LibraryDrivesWorkload) {
    std::istringstream in("tasks 2\ntask 0 1000\ntask 1 2000\nedge 0 1 64\n");
    TaskGraph g = read_task_graph(in);
    WorkloadParams params;
    params.arrival_rate_hz = 100.0;
    params.graph_library.push_back(std::move(g));
    WorkloadGenerator gen(params, 5);
    const auto apps = gen.generate(seconds(2));
    ASSERT_FALSE(apps.empty());
    for (const auto& app : apps) {
        EXPECT_EQ(app.graph.size(), 2u);
        EXPECT_EQ(app.graph.total_cycles(), 3000u);
    }
}

TEST(GraphIo, LibraryDrawsUniformly) {
    std::istringstream in1("tasks 1\ntask 0 1000\n");
    std::istringstream in2("tasks 1\ntask 0 9000\n");
    WorkloadParams params;
    params.arrival_rate_hz = 500.0;
    params.graph_library.push_back(read_task_graph(in1));
    params.graph_library.push_back(read_task_graph(in2));
    WorkloadGenerator gen(params, 11);
    const auto apps = gen.generate(seconds(2));
    int small = 0, big = 0;
    for (const auto& app : apps) {
        (app.graph.total_cycles() == 1000u ? small : big)++;
    }
    EXPECT_GT(small, 300);
    EXPECT_GT(big, 300);
}

}  // namespace
}  // namespace mcs
