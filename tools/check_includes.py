#!/usr/bin/env python3
"""Guard the include surface of the public façade header.

The god-object decomposition pruned src/core/system.hpp from 21 direct
project includes down to 14: the engine, chip, simulator and mapper-impl
headers moved behind forward declarations so façade consumers stop
recompiling on every internal change. This check keeps that from silently
regressing -- it fails when the header grows past the budget or when one of
the deliberately-hidden headers reappears.

Usage: check_includes.py [--root REPO_ROOT]
Exit code 0 on success, 1 on violation (with a per-violation message).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

HEADER = "src/core/system.hpp"

# Direct project includes allowed in the façade header. The budget has a
# one-include headroom over the current count so a legitimately needed
# value-type header does not require touching this file in the same PR.
MAX_PROJECT_INCLUDES = 15

# Headers the refactor intentionally removed from the façade: engines and
# heavyweight internals are reachable only by forward declaration. If one of
# these comes back, incomplete-type firewalls are broken -- fix the code,
# do not widen this list.
FORBIDDEN = (
    "core/platform_engine.hpp",
    "core/workload_engine.hpp",
    "core/test_engine.hpp",
    "core/system_context.hpp",
    "core/system_observer.hpp",
    "arch/chip.hpp",
    "sim/simulator.hpp",
    "mapping/mapper.hpp",
    "mapping/view_cache.hpp",
    "telemetry/observer_adapter.hpp",
)

PROJECT_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: parent of this script's directory)",
    )
    args = parser.parse_args()

    header = args.root / HEADER
    if not header.is_file():
        print(f"check_includes: {header} not found", file=sys.stderr)
        return 1

    includes = [
        m.group(1)
        for line in header.read_text(encoding="utf-8").splitlines()
        if (m := PROJECT_INCLUDE.match(line))
    ]

    errors = []
    if len(includes) > MAX_PROJECT_INCLUDES:
        listing = "\n".join(f"    {inc}" for inc in includes)
        errors.append(
            f"{HEADER} has {len(includes)} direct project includes "
            f"(budget: {MAX_PROJECT_INCLUDES}). Prefer a forward declaration "
            f"and an out-of-line accessor.\n{listing}"
        )
    for inc in includes:
        if inc in FORBIDDEN:
            errors.append(
                f"{HEADER} includes {inc}, which the façade must only "
                f"forward-declare (see docs/architecture.md)."
            )

    if errors:
        for err in errors:
            print(f"check_includes: {err}", file=sys.stderr)
        return 1

    print(
        f"check_includes: {HEADER} OK "
        f"({len(includes)}/{MAX_PROJECT_INCLUDES} project includes)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
