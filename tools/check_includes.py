#!/usr/bin/env python3
"""Guard the include surface of layering-sensitive headers.

Two kinds of rule, one per guarded header:

  * src/core/system.hpp -- the god-object decomposition pruned the public
    façade from 21 direct project includes down to 14: the engine, chip,
    simulator and mapper-impl headers moved behind forward declarations so
    façade consumers stop recompiling on every internal change. The check
    fails when the header grows past its budget or when one of the
    deliberately-hidden headers reappears.

  * src/sim/event_queue.hpp -- the simulation substrate must stay below the
    architecture/engine layers: the calendar queue is a pure (time, seq,
    callback) container and must never reach up into arch/ or core/
    headers. A forbidden *prefix* guards the whole subtree, so a new
    core/foo.hpp cannot slip in unnamed.

Usage: check_includes.py [--root REPO_ROOT]
Exit code 0 on success, 1 on violation (with a per-violation message).
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys


@dataclasses.dataclass(frozen=True)
class Rule:
    header: str
    # Budget for direct project includes; carries one-include headroom over
    # the current count so a legitimately needed value-type header does not
    # require touching this file in the same PR. None = no budget.
    max_project_includes: int | None = None
    # Exact headers that must never be included. If one of these comes
    # back, incomplete-type firewalls are broken -- fix the code, do not
    # widen this list.
    forbidden: tuple[str, ...] = ()
    # Directory prefixes (e.g. "core/") that must never be included --
    # layering guards where the whole subtree is off limits.
    forbidden_prefixes: tuple[str, ...] = ()


RULES = (
    Rule(
        header="src/core/system.hpp",
        max_project_includes=15,
        forbidden=(
            "core/platform_engine.hpp",
            "core/workload_engine.hpp",
            "core/test_engine.hpp",
            "core/system_context.hpp",
            "core/system_observer.hpp",
            "arch/chip.hpp",
            "sim/simulator.hpp",
            "mapping/mapper.hpp",
            "mapping/view_cache.hpp",
            "telemetry/observer_adapter.hpp",
        ),
    ),
    Rule(
        header="src/sim/event_queue.hpp",
        forbidden_prefixes=("arch/", "core/"),
    ),
)

PROJECT_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"')


def check_rule(root: pathlib.Path, rule: Rule, errors: list[str]) -> str:
    header = root / rule.header
    if not header.is_file():
        errors.append(f"{header} not found")
        return ""

    includes = [
        m.group(1)
        for line in header.read_text(encoding="utf-8").splitlines()
        if (m := PROJECT_INCLUDE.match(line))
    ]

    budget = rule.max_project_includes
    if budget is not None and len(includes) > budget:
        listing = "\n".join(f"    {inc}" for inc in includes)
        errors.append(
            f"{rule.header} has {len(includes)} direct project includes "
            f"(budget: {budget}). Prefer a forward declaration "
            f"and an out-of-line accessor.\n{listing}"
        )
    for inc in includes:
        if inc in rule.forbidden:
            errors.append(
                f"{rule.header} includes {inc}, which must only be "
                f"forward-declared (see docs/architecture.md)."
            )
        for prefix in rule.forbidden_prefixes:
            if inc.startswith(prefix):
                errors.append(
                    f"{rule.header} includes {inc}: the {prefix} layer is "
                    f"above this header (see docs/hot_paths.md)."
                )

    if budget is not None:
        return f"{rule.header} OK ({len(includes)}/{budget} project includes)"
    return f"{rule.header} OK ({len(includes)} project includes)"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: parent of this script's directory)",
    )
    args = parser.parse_args()

    errors: list[str] = []
    summaries = [check_rule(args.root, rule, errors) for rule in RULES]

    if errors:
        for err in errors:
            print(f"check_includes: {err}", file=sys.stderr)
        return 1
    for summary in summaries:
        print(f"check_includes: {summary}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
