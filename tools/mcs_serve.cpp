// mcs_serve -- resident what-if simulation service over warmed snapshots.
//
// Loads a pool of mcs.snapshot documents into memory at startup and
// answers what-if queries ("this snapshot, scheduler=X, budget=Y,
// horizon=Z") over a minimal HTTP/1.1 + JSON API (keep-alive and
// pipelining included), with a result cache keyed so a hit is
// byte-identical to a fresh computation. See docs/serving.md for the API
// and query grammar.
//
// Usage:
//   mcs_serve snapshot.<name>=<snapshot.json> [snapshot.<name>.config=<cfg>]
//             [run keys shared by all snapshots] [server keys]
//   mcs_serve config=serve.cfg [overrides ...]
//
// Server keys:
//   port=<int>          listen port (default 8077; 0 = ephemeral)
//   listen=<addr>       listen address (default 127.0.0.1)
//   workers=<int>       worker threads (0 = hardware concurrency)
//   queue=<int>         admission queue bound; overflow answers
//                       429 + Retry-After (default 64)
//   cache_entries=<int> result-cache capacity (default 256; 0 disables)
//   cache_file=<path>   persist the result cache: loaded at startup,
//                       written on graceful shutdown
//   max_body_kib=<int>  request body limit in KiB (default 1024)
//   idle_timeout_ms=<int>  idle / partial-request timeout; expiry answers
//                       408 + Connection: close (default 10000; 0 = off)
//   max_requests_per_conn=<int>  keep-alive request cap per connection
//                       (default 1000)
//   io_timeout_s=<int>  legacy alias for idle_timeout_ms (seconds)
//   quiet=true          suppress the startup banner
// Every other key is part of the shared base run configuration
// (core/config_bridge.hpp grammar) that each snapshot's config file
// overrides.
//
// Signals: SIGTERM / SIGINT begin a graceful drain -- stop accepting,
// finish dispatched requests, answer 503 + Connection: close on every
// other connection, exit 0. SIGHUP hot-reloads the snapshot pool from the
// same configuration (RCU swap; in-flight queries finish against the old
// pool), equivalent to POST /admin/reload.
//
// Example:
//   mcs_sim seconds=2 occupancy=0.7 checkpoint_at=1 checkpoint=warm.json
//   mcs_serve snapshot.warm=build/out/warm.json occupancy=0.7 seconds=2
//             port=8077   (one line)
//   curl -s -X POST http://127.0.0.1:8077/whatif -d '{
//     "schema":"mcs.whatif_query.v1","snapshot":"warm",
//     "overrides":{"scheduler":"greedy","tdp_scale":0.8}}'

#include <csignal>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "serve/service.hpp"
#include "serve/snapshot_pool.hpp"
#include "telemetry/metrics_registry.hpp"
#include "util/config.hpp"
#include "util/require.hpp"

namespace {

mcs::serve::HttpServer* g_server = nullptr;

void handle_signal(int sig) {
    if (g_server == nullptr) {
        return;
    }
    if (sig == SIGHUP) {
        g_server->request_reload();  // async-signal-safe (one pipe write)
    } else {
        g_server->stop();
    }
}

/// Keys consumed by the daemon itself; everything else is run config.
bool is_server_key(const std::string& key) {
    return key == "port" || key == "listen" || key == "workers" ||
           key == "queue" || key == "cache_entries" ||
           key == "cache_file" || key == "max_body_kib" ||
           key == "idle_timeout_ms" || key == "max_requests_per_conn" ||
           key == "io_timeout_s" || key == "quiet" || key == "config" ||
           key.rfind("snapshot.", 0) == 0;
}

int serve_main(int argc, char** argv) {
    std::vector<const char*> raw(argv + 1, argv + argc);
    mcs::Config args = mcs::Config::from_args(
        std::span<const char* const>(raw.data(), raw.size()));
    if (args.has("config")) {
        mcs::Config file =
            mcs::Config::from_file(args.get_string("config", ""));
        file.merge(args);  // command line wins
        args = std::move(file);
    }

    mcs::Config base_run;
    for (const auto& [key, value] : args.entries()) {
        if (!is_server_key(key)) {
            base_run.set(key, value);
        }
    }

    mcs::serve::ServerOptions opts;
    opts.listen = args.get_string("listen", "127.0.0.1");
    opts.port = static_cast<int>(args.get_int("port", 8077));
    opts.workers = static_cast<int>(args.get_int("workers", 0));
    opts.queue_limit =
        static_cast<std::size_t>(args.get_int("queue", 64));
    // io_timeout_s survives as a legacy alias from the thread-per-
    // connection era; idle_timeout_ms wins when both are given.
    opts.idle_timeout_ms = static_cast<int>(args.get_int(
        "idle_timeout_ms", args.get_int("io_timeout_s", 10) * 1000));
    opts.max_requests_per_conn =
        static_cast<int>(args.get_int("max_requests_per_conn", 1000));
    opts.http.max_body_bytes =
        static_cast<std::size_t>(args.get_int("max_body_kib", 1024)) * 1024;
    opts.quiet = args.get_bool("quiet", false);

    mcs::serve::ServiceOptions service_opts;
    service_opts.cache_entries =
        static_cast<std::size_t>(args.get_int("cache_entries", 256));
    service_opts.cache_file = args.get_string("cache_file", "");

    mcs::telemetry::MetricsRegistry registry;
    mcs::serve::ServeService service(
        mcs::serve::SnapshotPool::load(args, base_run), service_opts,
        registry);
    // SIGHUP / POST /admin/reload re-run the exact startup load: same
    // snapshot.* keys, same base run config, freshly read files.
    service.set_pool_loader([args, base_run] {
        return mcs::serve::SnapshotPool::load(args, base_run);
    });
    mcs::serve::HttpServer server(service, opts);
    g_server = &server;

    struct sigaction sa {};
    sa.sa_handler = handle_signal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGHUP, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    if (!opts.quiet) {
        std::printf("mcs_serve: %zu snapshot(s) warmed | listening on "
                    "%s:%d | %d workers, queue %zu, cache %zu\n",
                    service.pool()->size(), opts.listen.c_str(),
                    server.port(), server.worker_count(),
                    opts.queue_limit, service_opts.cache_entries);
        for (const auto& e : service.pool()->entries()) {
            std::printf("  snapshot %-16s %s (captured %.3f s of %.3f s)\n",
                        e.name.c_str(), e.path.c_str(),
                        mcs::to_seconds(e.captured_now),
                        mcs::to_seconds(e.captured_horizon));
        }
        std::fflush(stdout);
    }

    server.run();  // blocks until SIGTERM/SIGINT, then drains
    g_server = nullptr;
    service.save_cache();  // persist the result cache (cache_file=)
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        return serve_main(argc, argv);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mcs_serve: error: %s\n", e.what());
        return 1;
    }
}
