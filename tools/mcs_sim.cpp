// mcs_sim -- command-line driver for the manycore online-test simulator.
//
// Usage:
//   mcs_sim [key=value ...]
//   mcs_sim config=run.cfg [key=value overrides ...]
//
// Keys: see core/config_bridge.hpp. Driver-specific keys:
//   seconds=<double>   simulation horizon (default 10)
//   out=<path>         write a (metric,value) CSV report
//   trace=<path>       write the 5 ms power/state trace as CSV
//   quiet=true         suppress the human-readable summary
//
// Examples:
//   mcs_sim occupancy=0.9 scheduler=power-aware seconds=20 out=run.csv
//   mcs_sim node=22nm mapper=contiguous faults=true fault_rate=0.05

#include <cstdio>
#include <memory>
#include <optional>

#include "core/config_bridge.hpp"
#include "core/report.hpp"
#include "util/csv.hpp"

using namespace mcs;

int main(int argc, char** argv) {
    try {
        Config args = Config::from_args(std::span<const char* const>(
            argv + 1, static_cast<std::size_t>(argc - 1)));
        if (args.has("config")) {
            Config file = Config::from_file(args.get_string("config", ""));
            file.merge(args);  // command line wins
            args = std::move(file);
        }

        const double seconds = args.get_double("seconds", 10.0);
        const std::string out = args.get_string("out", "");
        const std::string trace = args.get_string("trace", "");
        const bool quiet = args.get_bool("quiet", false);

        const SystemConfig cfg = system_config_from(args);
        if (!quiet) {
            std::printf("mcs_sim: %dx%d @ %s | scheduler %s | mapper %s | "
                        "%.1f apps/s | %.1f s\n\n",
                        cfg.width, cfg.height, to_string(cfg.node),
                        to_string(cfg.scheduler), to_string(cfg.mapper),
                        cfg.workload.arrival_rate_hz, seconds);
        }

        ManycoreSystem sys(cfg);
        std::optional<CsvWriter> trace_csv;
        if (!trace.empty()) {
            trace_csv.emplace(
                trace,
                std::vector<std::string>{"t_s", "workload_w", "test_w",
                                         "other_w", "total_w", "tdp_w",
                                         "busy", "testing", "dark",
                                         "max_temp_c"});
            sys.set_trace_sink([&](const TraceSample& s) {
                trace_csv->write_row(std::vector<double>{
                    to_seconds(s.time), s.workload_power_w, s.test_power_w,
                    s.other_power_w, s.total_power_w, s.tdp_w,
                    static_cast<double>(s.cores_busy),
                    static_cast<double>(s.cores_testing),
                    static_cast<double>(s.cores_dark), s.max_temp_c});
            });
        }

        const RunMetrics m = sys.run(from_seconds(seconds));
        if (!quiet) {
            std::printf("%s", format_metrics(m).c_str());
        }
        if (!out.empty()) {
            write_metrics_csv(m, out);
            if (!quiet) {
                std::printf("\nmetrics written to %s\n", out.c_str());
            }
        }
        if (trace_csv && !quiet) {
            std::printf("trace written to %s (%zu samples)\n", trace.c_str(),
                        trace_csv->rows_written());
        }
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mcs_sim: error: %s\n", e.what());
        return 1;
    }
}
