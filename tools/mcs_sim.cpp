// mcs_sim -- command-line driver for the manycore online-test simulator.
//
// Single-run usage:
//   mcs_sim [key=value ...]
//   mcs_sim config=run.cfg [key=value overrides ...]
//
// Keys: see core/config_bridge.hpp. Driver-specific keys:
//   seconds=<double>   simulation horizon (default 10)
//   out=<path>         write a (metric,value) CSV report
//   trace=<path>       write the 5 ms power/state trace as CSV
//   quiet=true         suppress the human-readable summary
//
// Campaign usage (runner/sweep_spec.hpp format; any run config is a valid
// single-cell spec):
//   mcs_sim --sweep spec.cfg [--jobs N] [key=value overrides ...]
// Sweep-mode keys (also valid inside the spec file):
//   replicas=<int>         seed replicates per grid cell (default 1)
//   campaign_seed=<int>    root of all replica RNG streams (default 42)
//   jobs=<int>             worker threads (0 = hardware concurrency)
//   out=<path>             aggregate CSV (mean/stddev/ci95 per cell)
//   replica_out=<path>     per-replica CSV
// The aggregate CSV is bit-identical for every --jobs value. Exit status is
// nonzero if any replica failed.
//
// Examples:
//   mcs_sim occupancy=0.9 scheduler=power-aware seconds=20 out=run.csv
//   mcs_sim --sweep examples/configs/e1_sweep.cfg --jobs 8 out=sweep.csv

#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config_bridge.hpp"
#include "core/report.hpp"
#include "core/system_factory.hpp"
#include "runner/campaign_runner.hpp"
#include "runner/result_sink.hpp"
#include "util/csv.hpp"

using namespace mcs;

namespace {

/// Rewrites "--sweep X" / "--jobs N" flag pairs into the key=value form the
/// Config parser consumes; all other tokens pass through untouched.
std::vector<std::string> normalize_args(int argc, char** argv) {
    std::vector<std::string> out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if ((arg == "--sweep" || arg == "--jobs") && i + 1 < argc) {
            out.push_back(arg.substr(2) + "=" + argv[++i]);
        } else {
            out.push_back(arg);
        }
    }
    return out;
}

int run_sweep(const Config& args) {
    const std::string spec_path = args.get_string("sweep", "");
    Config merged = Config::from_file(spec_path);
    merged.merge(args);  // command line wins
    const int jobs = static_cast<int>(merged.get_int("jobs", 0));
    const std::string out = merged.get_string("out", "");
    const std::string replica_out = merged.get_string("replica_out", "");
    const bool quiet = merged.get_bool("quiet", false);
    // CLI-only keys the replica config must not see.
    Config spec_cfg;
    for (const auto& [key, value] : merged.entries()) {
        if (key != "out" && key != "replica_out" && key != "trace" &&
            key != "quiet" && key != "config") {
            spec_cfg.set(key, value);
        }
    }

    CampaignSpec spec = CampaignSpec::from_config(spec_cfg);
    CampaignRunner runner(std::move(spec));
    if (!quiet) {
        std::printf("mcs_sim: sweep %s | %zu cells x %d replicas = %zu "
                    "runs | %.1f s horizon\n",
                    spec_path.c_str(), runner.spec().cell_count(),
                    runner.spec().replicas, runner.spec().replica_count(),
                    runner.spec().seconds);
        runner.set_progress([](std::size_t done, std::size_t total) {
            std::fprintf(stderr, "\r[%zu/%zu]", done, total);
            if (done == total) {
                std::fprintf(stderr, "\n");
            }
        });
    }

    const CampaignResult result = runner.run(jobs);
    if (!quiet) {
        std::printf("%s\n", format_campaign_summary(result).c_str());
        std::printf("%zu/%zu replicas ok in %.2f s wall\n",
                    result.ok_count(), result.replicas.size(),
                    result.wall_seconds);
    }
    if (!out.empty()) {
        write_campaign_csv(result, out);
        if (!quiet) {
            std::printf("aggregate CSV written to %s\n", out.c_str());
        }
    }
    if (!replica_out.empty()) {
        write_replica_csv(result, replica_out);
        if (!quiet) {
            std::printf("replica CSV written to %s\n", replica_out.c_str());
        }
    }
    return result.failed_count() == 0 ? 0 : 1;
}

int run_single(const Config& args) {
    const double seconds = args.get_double("seconds", 10.0);
    const std::string out = args.get_string("out", "");
    const std::string trace = args.get_string("trace", "");
    const bool quiet = args.get_bool("quiet", false);

    const SystemConfig cfg = system_config_from(args);
    if (!quiet) {
        std::printf("mcs_sim: %dx%d @ %s | scheduler %s | mapper %s | "
                    "%.1f apps/s | %.1f s\n\n",
                    cfg.width, cfg.height, to_string(cfg.node),
                    to_string(cfg.scheduler), to_string(cfg.mapper),
                    cfg.workload.arrival_rate_hz, seconds);
    }

    ManycoreSystem sys(cfg);
    std::optional<CsvWriter> trace_csv;
    if (!trace.empty()) {
        trace_csv.emplace(
            trace,
            std::vector<std::string>{"t_s", "workload_w", "test_w",
                                     "other_w", "total_w", "tdp_w",
                                     "busy", "testing", "dark",
                                     "max_temp_c"});
        sys.set_trace_sink([&](const TraceSample& s) {
            trace_csv->write_row(std::vector<double>{
                to_seconds(s.time), s.workload_power_w, s.test_power_w,
                s.other_power_w, s.total_power_w, s.tdp_w,
                static_cast<double>(s.cores_busy),
                static_cast<double>(s.cores_testing),
                static_cast<double>(s.cores_dark), s.max_temp_c});
        });
    }

    const RunMetrics m = sys.run(from_seconds(seconds));
    if (!quiet) {
        std::printf("%s", format_metrics(m).c_str());
    }
    if (!out.empty()) {
        write_metrics_csv(m, out);
        if (!quiet) {
            std::printf("\nmetrics written to %s\n", out.c_str());
        }
    }
    if (trace_csv && !quiet) {
        std::printf("trace written to %s (%zu samples)\n", trace.c_str(),
                    trace_csv->rows_written());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const std::vector<std::string> tokens = normalize_args(argc, argv);
        std::vector<const char*> raw;
        raw.reserve(tokens.size());
        for (const std::string& t : tokens) {
            raw.push_back(t.c_str());
        }
        Config args = Config::from_args(
            std::span<const char* const>(raw.data(), raw.size()));
        if (args.has("sweep")) {
            return run_sweep(args);
        }
        if (args.has("config")) {
            Config file = Config::from_file(args.get_string("config", ""));
            file.merge(args);  // command line wins
            args = std::move(file);
        }
        return run_single(args);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mcs_sim: error: %s\n", e.what());
        return 1;
    }
}
