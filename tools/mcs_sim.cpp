// mcs_sim -- command-line driver for the manycore online-test simulator.
//
// Single-run usage:
//   mcs_sim [key=value ...]
//   mcs_sim config=run.cfg [key=value overrides ...]
//
// Keys: see core/config_bridge.hpp. Driver-specific keys:
//   seconds=<double>    simulation horizon (default 10)
//   epoch_workers=<n>   threads sharding per-core epoch work inside THIS
//                       run (0 = hardware); output bytes are identical
//                       for any value (docs/parallelism.md)
//   out=<path>          write a (metric,value) CSV report
//   report=<path>       write the RunReport JSON (metrics + registry)
//   trace=<path>        write the event trace (*.jsonl -> JSONL, anything
//                       else -> Chrome-trace JSON for chrome://tracing)
//   trace_capacity=<n>  event-trace ring capacity (default 65536)
//   power_trace=<path>  write the 5 ms power/state trace as CSV
//   out_dir=<dir>       directory for relative output paths (default
//                       build/out; created on demand; "" or "." = cwd)
//   quiet=true          suppress the human-readable summary
//   checkpoint=<path>   write an mcs.snapshot document mid-run ...
//   checkpoint_at=<s>   ... at this time (a power-epoch boundary)
//   restore=<path>      rebuild the system from a snapshot and continue;
//                       without seconds= the captured horizon is used
//   restore_relax=true  allow policy-knob changes vs the captured config
//                       (structure must still match); see docs/checkpoint.md
//
// Campaign usage (runner/sweep_spec.hpp format; any run config is a valid
// single-cell spec):
//   mcs_sim --sweep spec.cfg [--jobs N] [key=value overrides ...]
// Sweep-mode keys (also valid inside the spec file):
//   replicas=<int>         seed replicates per grid cell (default 1)
//   campaign_seed=<int>    root of all replica RNG streams (default 42)
//   jobs=<int>             worker threads (0 = hardware concurrency)
//   out=<path>             aggregate CSV (mean/stddev/ci95 per cell)
//   replica_out=<path>     per-replica CSV
//   report=<path>          aggregate campaign report JSON
//   out_dir=<dir>          as in single-run mode (default build/out)
// The aggregate CSV/JSON bytes are bit-identical for every --jobs value.
// epoch_workers= composes with --jobs: jobs shards replicas across
// processes' worth of threads, epoch_workers shards cores inside each
// replica (total threads ~ jobs x epoch_workers; bytes unchanged).
// Exit status is nonzero if any replica failed.
//
// NOTE: in both modes, RELATIVE output paths land under out_dir -- by
// default `out=sweep.csv` writes build/out/sweep.csv, not ./sweep.csv.
// Pass out_dir=. (or --out-dir .) to write into the current directory.
//
// Examples:
//   mcs_sim occupancy=0.9 scheduler=power-aware seconds=20 out=run.csv
//   mcs_sim occupancy=0.9 --trace run.trace.json --report run.report.json
//   mcs_sim --sweep examples/configs/e1_sweep.cfg --jobs 8 out=sweep.csv

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/config_bridge.hpp"
#include "core/report.hpp"
#include "core/system_factory.hpp"
#include "runner/campaign_runner.hpp"
#include "runner/result_sink.hpp"
#include "scenario/scenario_runner.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/tracer.hpp"
#include "util/csv.hpp"
#include "util/require.hpp"

using namespace mcs;

namespace {

/// Rewrites "--flag value" pairs into the key=value form the Config parser
/// consumes; all other tokens pass through untouched.
std::vector<std::string> normalize_args(int argc, char** argv) {
    std::vector<std::string> out;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out-dir" && i + 1 < argc) {
            out.push_back(std::string("out_dir=") + argv[++i]);
        } else if ((arg == "--sweep" || arg == "--jobs" || arg == "--trace" ||
                    arg == "--report" || arg == "--out") &&
                   i + 1 < argc) {
            out.push_back(arg.substr(2) + "=" + argv[++i]);
        } else {
            out.push_back(arg);
        }
    }
    return out;
}

/// Routes a relative output path through out_dir (creating it on demand);
/// absolute paths and empty paths pass through untouched.
std::string resolve_out(const std::string& out_dir, const std::string& path) {
    if (path.empty() || out_dir.empty() || out_dir == ".") {
        return path;
    }
    const std::filesystem::path p(path);
    if (p.is_absolute()) {
        return path;
    }
    std::filesystem::create_directories(out_dir);
    return (std::filesystem::path(out_dir) / p).string();
}

/// Writes the event trace; the format follows the file extension
/// (*.jsonl -> JSONL, anything else -> Chrome-trace JSON).
void write_trace_file(const telemetry::Tracer& tracer,
                      const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    MCS_REQUIRE(out.is_open(), "cannot open trace file: " + path);
    if (path.size() >= 6 && path.ends_with(".jsonl")) {
        tracer.write_jsonl(out);
    } else {
        tracer.write_chrome_json(out);
    }
    MCS_REQUIRE(out.good(), "write failed: " + path);
}

int run_sweep(const Config& args) {
    const std::string spec_path = args.get_string("sweep", "");
    Config merged = Config::from_file(spec_path);
    merged.merge(args);  // command line wins
    const int jobs = static_cast<int>(merged.get_int("jobs", 0));
    const std::string out_dir = merged.get_string("out_dir", "build/out");
    const std::string out = resolve_out(out_dir, merged.get_string("out", ""));
    const std::string replica_out =
        resolve_out(out_dir, merged.get_string("replica_out", ""));
    const std::string report =
        resolve_out(out_dir, merged.get_string("report", ""));
    const bool quiet = merged.get_bool("quiet", false);
    // CLI-only keys the replica config must not see. Checkpoint keys are
    // stripped too: parallel replicas writing one snapshot path would race
    // (restore/restore_relax DO pass through -- fork-from-checkpoint).
    Config spec_cfg;
    for (const auto& [key, value] : merged.entries()) {
        if (key != "out" && key != "replica_out" && key != "trace" &&
            key != "trace_capacity" && key != "power_trace" &&
            key != "report" && key != "out_dir" && key != "quiet" &&
            key != "config" && key != "checkpoint" &&
            key != "checkpoint_at") {
            spec_cfg.set(key, value);
        }
    }

    CampaignSpec spec = CampaignSpec::from_config(spec_cfg);
    CampaignRunner runner(std::move(spec));
    // Scenario-aware replicas: a `scenario=` key (in the spec base or per
    // cell) attaches the named spec to every replica; without the key this
    // is exactly the default replica path.
    runner.set_replica_fn([](const Config& cfg, double secs) {
        return run_system_with_scenario(cfg, from_seconds(secs));
    });
    if (!quiet) {
        std::printf("mcs_sim: sweep %s | %zu cells x %d replicas = %zu "
                    "runs | %.1f s horizon\n",
                    spec_path.c_str(), runner.spec().cell_count(),
                    runner.spec().replicas, runner.spec().replica_count(),
                    runner.spec().seconds);
        runner.set_progress([](std::size_t done, std::size_t total) {
            std::fprintf(stderr, "\r[%zu/%zu]", done, total);
            if (done == total) {
                std::fprintf(stderr, "\n");
            }
        });
    }

    const CampaignResult result = runner.run(jobs);
    if (!quiet) {
        std::printf("%s\n", format_campaign_summary(result).c_str());
        std::printf("%zu/%zu replicas ok in %.2f s wall\n",
                    result.ok_count(), result.replicas.size(),
                    result.wall_seconds);
    }
    if (!out.empty()) {
        write_campaign_csv(result, out);
        if (!quiet) {
            std::printf("aggregate CSV written to %s\n", out.c_str());
        }
    }
    if (!replica_out.empty()) {
        write_replica_csv(result, replica_out);
        if (!quiet) {
            std::printf("replica CSV written to %s\n", replica_out.c_str());
        }
    }
    if (!report.empty()) {
        write_campaign_report_json(result, report);
        if (!quiet) {
            std::printf("campaign report written to %s\n", report.c_str());
        }
    }
    return result.failed_count() == 0 ? 0 : 1;
}

int run_single(const Config& args) {
    const double seconds = args.get_double("seconds", 10.0);
    const std::string out_dir = args.get_string("out_dir", "build/out");
    const std::string out = resolve_out(out_dir, args.get_string("out", ""));
    const std::string trace =
        resolve_out(out_dir, args.get_string("trace", ""));
    const std::string report =
        resolve_out(out_dir, args.get_string("report", ""));
    const std::string power_trace =
        resolve_out(out_dir, args.get_string("power_trace", ""));
    const auto trace_capacity = static_cast<std::size_t>(args.get_int(
        "trace_capacity",
        static_cast<std::int64_t>(telemetry::Tracer::kDefaultCapacity)));
    const bool quiet = args.get_bool("quiet", false);

    const SystemConfig cfg = system_config_from(args);
    if (!quiet) {
        std::printf("mcs_sim: %dx%d @ %s | scheduler %s | mapper %s | "
                    "%.1f apps/s | %.1f s\n\n",
                    cfg.width, cfg.height, to_string(cfg.node),
                    to_string(cfg.scheduler), to_string(cfg.mapper),
                    cfg.workload.arrival_rate_hz, seconds);
    }

    ManycoreSystem sys(cfg);
    std::optional<telemetry::Tracer> tracer;
    if (!trace.empty()) {
        tracer.emplace(trace_capacity);
        sys.set_tracer(&*tracer);
    }
    // Scenario before restore (a snapshot captured mid-scenario reloads
    // its replay position into the attached player); restore after the
    // tracer is attached (reloads the captured ring) and before any
    // checkpoint registration.
    attach_scenario_from(sys, args);
    apply_restore(sys, args);
    SimDuration horizon = from_seconds(seconds);
    if (sys.restored() && !args.has("seconds")) {
        horizon = sys.restored_horizon();  // default to the captured run
    }
    const std::string checkpoint =
        resolve_out(out_dir, args.get_string("checkpoint", ""));
    if (!checkpoint.empty()) {
        MCS_REQUIRE(args.has("checkpoint_at"),
                    "checkpoint requires checkpoint_at=<seconds>");
        sys.checkpoint_at(from_seconds(args.get_double("checkpoint_at", 0)),
                          checkpoint);
    } else {
        MCS_REQUIRE(!args.has("checkpoint_at"),
                    "checkpoint_at requires checkpoint=<path>");
    }
    std::optional<CsvWriter> trace_csv;
    if (!power_trace.empty()) {
        trace_csv.emplace(
            power_trace,
            std::vector<std::string>{"t_s", "workload_w", "test_w",
                                     "other_w", "total_w", "tdp_w",
                                     "busy", "testing", "dark",
                                     "max_temp_c"});
        sys.set_trace_sink([&](const TraceSample& s) {
            trace_csv->write_row(std::vector<double>{
                to_seconds(s.time), s.workload_power_w, s.test_power_w,
                s.other_power_w, s.total_power_w, s.tdp_w,
                static_cast<double>(s.cores_busy),
                static_cast<double>(s.cores_testing),
                static_cast<double>(s.cores_dark), s.max_temp_c});
        });
    }

    const RunMetrics m = sys.run(horizon);
    if (!quiet) {
        std::printf("%s", format_metrics(m).c_str());
    }
    if (!out.empty()) {
        write_metrics_csv(m, out);
        if (!quiet) {
            std::printf("\nmetrics written to %s\n", out.c_str());
        }
    }
    if (!report.empty()) {
        telemetry::write_run_report_file(m, &sys.registry(), report);
        if (!quiet) {
            std::printf("run report written to %s\n", report.c_str());
        }
    }
    if (tracer) {
        write_trace_file(*tracer, trace);
        if (!quiet) {
            std::printf("event trace written to %s (%zu events, %llu "
                        "dropped)\n",
                        trace.c_str(), tracer->size(),
                        static_cast<unsigned long long>(tracer->dropped()));
        }
    }
    if (trace_csv && !quiet) {
        std::printf("power trace written to %s (%zu samples)\n",
                    power_trace.c_str(), trace_csv->rows_written());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const std::vector<std::string> tokens = normalize_args(argc, argv);
        std::vector<const char*> raw;
        raw.reserve(tokens.size());
        for (const std::string& t : tokens) {
            raw.push_back(t.c_str());
        }
        Config args = Config::from_args(
            std::span<const char* const>(raw.data(), raw.size()));
        if (args.has("sweep")) {
            return run_sweep(args);
        }
        if (args.has("config")) {
            Config file = Config::from_file(args.get_string("config", ""));
            file.merge(args);  // command line wins
            args = std::move(file);
        }
        return run_single(args);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "mcs_sim: error: %s\n", e.what());
        return 1;
    }
}
