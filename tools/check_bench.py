#!/usr/bin/env python3
"""Perf-regression gate for the bench suite.

Compares freshly generated BENCH_<name>.json reports (schema
mcs.bench_report.v1, produced by every bench binary via bench_common's
BenchReport) against the committed baselines in bench/baselines/.

Two classes of checks:

  * Headline metrics: the simulator is deterministic for a fixed seed, so
    metric values must match the baseline up to a small relative tolerance
    (covering libm / compiler differences across CI images). A larger drift
    means the simulation changed behaviour -- that must be an intentional
    baseline update, not an accident.

  * Wall time: machines differ in absolute speed, so per-bench wall-time
    ratios (new/baseline) are normalized by the median ratio across all
    benches (the machine-speed factor). A bench whose normalized ratio
    exceeds 1 + --wall-tolerance regressed relative to its peers. Because
    sub-second --quick runs on shared runners are noisy, this check is
    advisory by default (--wall-mode warn); pass --wall-mode gate to make
    it blocking for longer local runs.

Exit code 0 if everything passes, 1 on any failure, 2 on usage errors.

Usage:
  tools/check_bench.py --baseline-dir bench/baselines --new-dir build/out
  tools/check_bench.py ... --update   # rewrite baselines from --new-dir
"""

import argparse
import json
import math
import pathlib
import shutil
import sys

def _schema_tag(family):
    """Versioned schema tag from tools/schemas.json -- the same single
    source of truth the C++ side embeds via telemetry/schema.hpp, so a
    future v2 bump changes producers, loaders, and this gate together."""
    schemas_path = pathlib.Path(__file__).resolve().parent / "schemas.json"
    with open(schemas_path, "r", encoding="utf-8") as f:
        versions = json.load(f)
    if family not in versions:
        raise SystemExit(f"error: unknown schema family {family!r} "
                         f"(add it to {schemas_path})")
    return f"{family}.v{versions[family]}"


SCHEMA = _schema_tag("mcs.bench_report")


def load_reports(directory):
    reports = {}
    for path in sorted(pathlib.Path(directory).glob("BENCH_*.json")):
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
        if data.get("schema") != SCHEMA:
            # Other tools drop JSON in the same directory (e.g. google
            # benchmark's --benchmark_out); skip anything that is not a
            # bench report rather than crashing the gate.
            print(
                f"warning: skipping {path}: schema "
                f"{data.get('schema')!r} != {SCHEMA!r}",
                file=sys.stderr,
            )
            continue
        reports[data["bench"]] = (path, data)
    return reports


def rel_diff(new, base):
    if new == base:
        return 0.0
    denom = max(abs(new), abs(base))
    if denom == 0.0:
        return 0.0
    return abs(new - base) / denom


def check_metrics(name, base, new, tol, failures):
    base_m = base.get("metrics", {})
    new_m = new.get("metrics", {})
    for key in sorted(set(base_m) | set(new_m)):
        if key not in new_m:
            failures.append(f"{name}: metric '{key}' disappeared")
            continue
        if key not in base_m:
            failures.append(
                f"{name}: new metric '{key}' has no baseline "
                f"(run with --update to accept)"
            )
            continue
        b, n = base_m[key], new_m[key]
        if not (
            isinstance(b, (int, float)) and isinstance(n, (int, float))
        ) or isinstance(b, bool) or isinstance(n, bool):
            if b != n:
                failures.append(f"{name}: metric '{key}' changed {b!r} -> {n!r}")
            continue
        if math.isnan(b) and math.isnan(n):
            continue
        d = rel_diff(n, b)
        if d > tol:
            failures.append(
                f"{name}: metric '{key}' drifted {b:.6g} -> {n:.6g} "
                f"(rel {d:.2%} > {tol:.2%})"
            )


def check_wall(pairs, tolerance, mode, failures):
    if mode == "off":
        print("wall-time check disabled (--wall-mode off)")
        return
    ratios = {}
    for name, (base, new) in pairs.items():
        b = base.get("wall_s", 0.0)
        n = new.get("wall_s", 0.0)
        if b > 0 and n > 0:
            ratios[name] = n / b
    if len(ratios) < 3:
        # Too few samples to estimate the machine-speed factor reliably;
        # skip the wall-time gate (metrics still guard correctness).
        print(f"wall-time gate skipped ({len(ratios)} comparable benches < 3)")
        return
    speed = sorted(ratios.values())[len(ratios) // 2]
    print(f"machine-speed factor (median wall ratio): {speed:.3f}")
    blocking = mode == "gate"
    for name, ratio in sorted(ratios.items()):
        normalized = ratio / speed
        slow = normalized > 1.0 + tolerance
        marker = ("FAIL" if blocking else "WARN") if slow else "ok"
        print(f"  {name:28s} ratio {ratio:6.3f}  normalized {normalized:6.3f}  {marker}")
        if slow:
            msg = (
                f"{name}: wall time regressed {normalized - 1.0:.1%} vs peers "
                f"(> {tolerance:.0%})"
            )
            if blocking:
                failures.append(msg)
            else:
                print(f"warning: {msg}", file=sys.stderr)


def append_trend(path, label, reports):
    """Appends one mcs.bench_trend.v1 JSONL record per fresh report.

    The trend file is a committed, append-only trajectory of per-PR bench
    results (wall time plus headline metrics), so perf drift that stays
    under the per-PR gate tolerance is still visible over time. Records
    are written sorted by bench name with sorted keys, so a given run
    always appends byte-identical lines.
    """
    tag = _schema_tag("mcs.bench_trend")
    gated = {"schema", "bench", "quick", "metrics", "wall_s"}
    trend_path = pathlib.Path(path)
    trend_path.parent.mkdir(parents=True, exist_ok=True)
    with open(trend_path, "a", encoding="utf-8") as f:
        for name in sorted(reports):
            _, data = reports[name]
            record = {
                "schema": tag,
                "label": label,
                "bench": name,
                "quick": data.get("quick", False),
                "wall_s": data.get("wall_s", 0.0),
                "metrics": data.get("metrics", {}),
            }
            # Auxiliary sections (e.g. bench_serve's "latency") ride along
            # untouched -- they are exactly the numbers the per-PR gate
            # ignores but a trajectory makes meaningful.
            aux = {k: v for k, v in data.items() if k not in gated}
            if aux:
                record["aux"] = aux
            f.write(json.dumps(record, sort_keys=True,
                               separators=(",", ":")) + "\n")
    print(f"appended {len(reports)} trend record(s) to {trend_path}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--new-dir", default="build/out")
    ap.add_argument(
        "--metric-tolerance",
        type=float,
        default=1e-6,
        help="max relative drift for headline metrics (default 1e-6)",
    )
    ap.add_argument(
        "--wall-tolerance",
        type=float,
        default=0.15,
        help="max normalized wall-time regression (default 0.15 = 15%%)",
    )
    ap.add_argument(
        "--wall-mode",
        choices=["gate", "warn", "off"],
        default="warn",
        help="wall-time check: 'gate' fails the run, 'warn' (default) only "
        "prints -- sub-second --quick runs on shared CI runners are too "
        "noisy for a blocking 15%% gate -- 'off' skips it entirely",
    )
    ap.add_argument(
        "--only",
        default=None,
        help="comma-separated bench names; restrict the gate (and trend "
        "append) to these reports -- for CI jobs that run a single bench "
        "without regenerating the rest of the suite",
    )
    ap.add_argument(
        "--require",
        default=None,
        help="comma-separated bench names that MUST be present in --new-dir; "
        "fails fast if a CI glob silently stopped running one of them "
        "(unlike --only, does not restrict the gate to these names)",
    )
    ap.add_argument(
        "--update",
        action="store_true",
        help="copy new reports over the baselines instead of comparing",
    )
    ap.add_argument(
        "--trend-file",
        default=None,
        help="append per-bench mcs.bench_trend.v1 JSONL records (wall "
        "time + metrics trajectory) to this committed file after a "
        "passing gate (or alongside --update)",
    )
    ap.add_argument(
        "--trend-label",
        default="local",
        help="label recorded with each trend record, e.g. a PR number or "
        "commit hash (default: local)",
    )
    args = ap.parse_args()

    only = None
    if args.only:
        only = {name.strip() for name in args.only.split(",") if name.strip()}
        if not only:
            print("error: --only given but empty", file=sys.stderr)
            return 2

    new = load_reports(args.new_dir)
    if only is not None:
        missing = only - set(new)
        if missing:
            print(
                f"error: --only bench(es) absent from {args.new_dir}: "
                f"{', '.join(sorted(missing))}",
                file=sys.stderr,
            )
            return 2
        new = {name: new[name] for name in only}
    if not new:
        print(f"error: no BENCH_*.json reports in {args.new_dir}", file=sys.stderr)
        return 2
    if args.require:
        required = {n.strip() for n in args.require.split(",") if n.strip()}
        absent = required - set(new)
        if absent:
            print(
                f"error: --require bench(es) absent from {args.new_dir}: "
                f"{', '.join(sorted(absent))}",
                file=sys.stderr,
            )
            return 2

    baseline_dir = pathlib.Path(args.baseline_dir)
    if args.update:
        baseline_dir.mkdir(parents=True, exist_ok=True)
        for name, (path, _) in sorted(new.items()):
            shutil.copy(path, baseline_dir / path.name)
            print(f"updated baseline {baseline_dir / path.name}")
        if args.trend_file:
            append_trend(args.trend_file, args.trend_label, new)
        return 0

    base = load_reports(baseline_dir)
    if only is not None:
        base = {name: base[name] for name in only if name in base}
    if not base:
        print(f"error: no baselines in {baseline_dir}", file=sys.stderr)
        return 2

    failures = []
    for name in sorted(set(base) | set(new)):
        if name not in new:
            failures.append(f"{name}: report missing from {args.new_dir}")
        elif name not in base:
            failures.append(
                f"{name}: no baseline (run with --update to accept)"
            )
    pairs = {
        name: (base[name][1], new[name][1]) for name in sorted(set(base) & set(new))
    }
    for name, (b, n) in pairs.items():
        check_metrics(name, b, n, args.metric_tolerance, failures)
    check_wall(pairs, args.wall_tolerance, args.wall_mode, failures)

    if failures:
        print(f"\n{len(failures)} bench gate failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nbench gate passed: {len(pairs)} benches vs baselines")
    if args.trend_file:
        append_trend(args.trend_file, args.trend_label, new)
    return 0


if __name__ == "__main__":
    sys.exit(main())
